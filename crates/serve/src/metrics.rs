//! Service metrics: lock-light recorders on the hot path, a serializable
//! [`ServeStats`] snapshot for monitoring and bench reports.

use crate::backend::BackendKind;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cap on retained latency samples per series; beyond it the buffer
/// wraps, keeping a recent window rather than unbounded history.
const SAMPLE_CAP: usize = 1 << 18;

/// Order-insensitive percentile summary of one latency series (µs).
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Samples the summary was computed over.
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl LatencySummary {
    fn empty() -> Self {
        LatencySummary { count: 0, mean_us: 0.0, p50_us: 0, p95_us: 0, p99_us: 0, max_us: 0 }
    }

    fn from_samples(samples: &[u64], count: u64) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |p: f64| {
            let rank = ((sorted.len() as f64) * p).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        LatencySummary {
            count,
            mean_us: mean,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: *sorted.last().unwrap(),
        }
    }
}

/// Wrapping sample buffer: cheap push, snapshot-on-demand.
#[derive(Debug)]
struct SampleRing {
    samples: Mutex<Vec<u64>>,
    pushed: AtomicU64,
}

impl SampleRing {
    fn new() -> Self {
        SampleRing { samples: Mutex::new(Vec::new()), pushed: AtomicU64::new(0) }
    }

    fn push(&self, value_us: u64) {
        let n = self.pushed.fetch_add(1, Ordering::Relaxed) as usize;
        let mut samples = self.samples.lock().unwrap();
        if samples.len() < SAMPLE_CAP {
            samples.push(value_us);
        } else {
            samples[n % SAMPLE_CAP] = value_us;
        }
    }

    fn summary(&self) -> LatencySummary {
        let samples = self.samples.lock().unwrap();
        LatencySummary::from_samples(&samples, self.pushed.load(Ordering::Relaxed))
    }
}

/// Per-backend counters.
#[derive(Debug)]
pub(crate) struct BackendRecorder {
    batches: AtomicU64,
    queries: AtomicU64,
    batch_latency: SampleRing,
}

impl BackendRecorder {
    fn new() -> Self {
        BackendRecorder {
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            batch_latency: SampleRing::new(),
        }
    }

    pub(crate) fn record_batch(&self, rows: usize, elapsed_us: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(rows as u64, Ordering::Relaxed);
        self.batch_latency.push(elapsed_us);
    }
}

/// Shared metrics hub, one per service.
#[derive(Debug)]
pub(crate) struct MetricsHub {
    started: Instant,
    submitted_rows: AtomicU64,
    rejected_rows: AtomicU64,
    completed_rows: AtomicU64,
    batches: AtomicU64,
    max_batch_rows: AtomicU64,
    request_latency: SampleRing,
    backends: Vec<(BackendKind, BackendRecorder)>,
}

impl MetricsHub {
    pub(crate) fn new(backends: &[BackendKind]) -> Self {
        MetricsHub {
            started: Instant::now(),
            submitted_rows: AtomicU64::new(0),
            rejected_rows: AtomicU64::new(0),
            completed_rows: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch_rows: AtomicU64::new(0),
            request_latency: SampleRing::new(),
            backends: backends.iter().map(|&k| (k, BackendRecorder::new())).collect(),
        }
    }

    pub(crate) fn record_submit(&self, rows: usize) {
        self.submitted_rows.fetch_add(rows as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_reject(&self, rows: usize) {
        self.rejected_rows.fetch_add(rows as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_batch_formed(&self, rows: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch_rows.fetch_max(rows as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_request_done(&self, rows: usize, latency_us: u64) {
        self.completed_rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.request_latency.push(latency_us);
    }

    pub(crate) fn recorder(&self, idx: usize) -> &BackendRecorder {
        &self.backends[idx].1
    }

    pub(crate) fn snapshot(
        &self,
        queue_rows: usize,
        backend_extra: impl Fn(usize) -> (f64, usize, u64),
    ) -> ServeStats {
        let batches = self.batches.load(Ordering::Relaxed);
        let completed = self.completed_rows.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let backends = self
            .backends
            .iter()
            .enumerate()
            .map(|(idx, (kind, rec))| {
                let (ewma_us, inflight, fallbacks) = backend_extra(idx);
                let queries = rec.queries.load(Ordering::Relaxed);
                BackendStats {
                    backend: kind.name().to_string(),
                    batches: rec.batches.load(Ordering::Relaxed),
                    queries,
                    share_of_queries: if completed > 0 {
                        queries as f64 / completed as f64
                    } else {
                        0.0
                    },
                    ewma_us_per_query: ewma_us,
                    inflight_rows: inflight,
                    device_fallbacks: fallbacks,
                    batch_latency: rec.batch_latency.summary(),
                }
            })
            .collect();
        ServeStats {
            uptime_ms: uptime.as_millis() as u64,
            submitted_rows: self.submitted_rows.load(Ordering::Relaxed),
            rejected_rows: self.rejected_rows.load(Ordering::Relaxed),
            completed_rows: completed,
            queue_rows,
            batches,
            mean_batch_occupancy: if batches > 0 { completed as f64 / batches as f64 } else { 0.0 },
            max_batch_occupancy: self.max_batch_rows.load(Ordering::Relaxed),
            throughput_qps: completed as f64 / uptime.as_secs_f64().max(1e-9),
            request_latency: self.request_latency.summary(),
            backends,
        }
    }
}

/// Per-backend slice of a [`ServeStats`] snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct BackendStats {
    /// Stable backend name (`cpu-parallel`, ...).
    pub backend: String,
    /// Batches executed.
    pub batches: u64,
    /// Query rows executed.
    pub queries: u64,
    /// Fraction of all completed rows this backend served.
    pub share_of_queries: f64,
    /// The scheduler's current per-query latency estimate (µs).
    pub ewma_us_per_query: f64,
    /// Rows dispatched but not yet completed.
    pub inflight_rows: usize,
    /// Device-refusal fallbacks to the CPU traversal path.
    pub device_fallbacks: u64,
    /// Wall-clock latency of whole batches on this backend.
    pub batch_latency: LatencySummary,
}

/// Point-in-time service snapshot — the monitoring/bench export surface.
#[derive(Debug, Clone, Serialize)]
pub struct ServeStats {
    pub uptime_ms: u64,
    /// Rows admitted to the queue.
    pub submitted_rows: u64,
    /// Rows refused by admission control.
    pub rejected_rows: u64,
    /// Rows predicted and delivered.
    pub completed_rows: u64,
    /// Rows waiting in the queue right now.
    pub queue_rows: usize,
    /// Batches formed by the dynamic batcher.
    pub batches: u64,
    /// Completed rows per formed batch.
    pub mean_batch_occupancy: f64,
    /// Largest batch formed (rows).
    pub max_batch_occupancy: u64,
    /// Completed rows per second of uptime.
    pub throughput_qps: f64,
    /// Enqueue-to-delivery latency over whole requests.
    pub request_latency: LatencySummary,
    /// Per-backend breakdown.
    pub backends: Vec<BackendStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_series() {
        let ring = SampleRing::new();
        for v in 1..=100u64 {
            ring.push(v);
        }
        let s = ring.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_summary() {
        let ring = SampleRing::new();
        ring.push(7);
        let s = ring.summary();
        assert_eq!((s.p50_us, s.p95_us, s.p99_us, s.max_us), (7, 7, 7, 7));
    }

    #[test]
    fn ring_wraps_at_capacity() {
        let ring = SampleRing::new();
        for _ in 0..SAMPLE_CAP + 10 {
            ring.push(1);
        }
        let s = ring.summary();
        assert_eq!(s.count, (SAMPLE_CAP + 10) as u64);
        assert_eq!(ring.samples.lock().unwrap().len(), SAMPLE_CAP);
    }
}
