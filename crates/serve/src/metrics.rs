//! Service metrics on the `rfx-telemetry` registry.
//!
//! Every number the service records lands in a named metric on the
//! service's [`Telemetry`] domain (`serve.*`, see DESIGN.md §10), so one
//! JSON snapshot exports the whole picture; the serializable
//! [`ServeStats`] monitoring surface is *computed from* the registry.
//! Latency series are fixed-bucket histograms — recording is lock-free
//! and snapshots read bucket counts instead of sorting a sample buffer
//! (the old `SampleRing` sorted up to 2^18 samples on every snapshot).

use crate::backend::BackendKind;
use crate::breaker::BreakerState;
use crate::registry::VersionStats;
use crate::router::ShadowStats;
use rfx_telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, Telemetry, TraceId};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Percentile summary of one latency series (µs), bucket-estimated.
///
/// `count`, `mean_us`, and `max_us` are exact; the percentiles carry the
/// histogram's ≤ 12.5% relative bucket error.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Samples the summary was computed over.
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl LatencySummary {
    pub(crate) fn from_histogram(h: &HistogramSnapshot) -> Self {
        LatencySummary {
            count: h.count,
            mean_us: h.mean(),
            p50_us: h.quantile(0.50),
            p95_us: h.quantile(0.95),
            p99_us: h.quantile(0.99),
            max_us: h.max,
        }
    }
}

/// Telemetry handles for one backend (registered once at startup;
/// recording is atomic ops only).
#[derive(Debug)]
pub(crate) struct BackendRecorder {
    kind: BackendKind,
    batches: Arc<Counter>,
    queries: Arc<Counter>,
    batch_latency: Arc<Histogram>,
    dispatches: Arc<Counter>,
    ewma_us: Arc<Gauge>,
    inflight_rows: Arc<Gauge>,
    device_fallbacks: Arc<Gauge>,
    timeouts: Arc<Counter>,
    breaker_state: Arc<Gauge>,
    breaker_trips: Arc<Gauge>,
    injected_faults: Arc<Gauge>,
}

impl BackendRecorder {
    fn new(telemetry: &Telemetry, kind: BackendKind) -> Self {
        let name = kind.name();
        BackendRecorder {
            kind,
            batches: telemetry.counter(&format!("serve.backend.{name}.batches")),
            queries: telemetry.counter(&format!("serve.backend.{name}.queries")),
            batch_latency: telemetry.histogram(&format!("serve.backend.{name}.batch_latency_us")),
            dispatches: telemetry.counter(&format!("serve.scheduler.{name}.dispatches")),
            ewma_us: telemetry.gauge(&format!("serve.scheduler.{name}.ewma_us")),
            inflight_rows: telemetry.gauge(&format!("serve.scheduler.{name}.inflight_rows")),
            device_fallbacks: telemetry.gauge(&format!("serve.backend.{name}.device_fallbacks")),
            timeouts: telemetry.counter(&format!("serve.backend.{name}.timeouts")),
            breaker_state: telemetry.gauge(&format!("serve.breaker.{name}.state")),
            breaker_trips: telemetry.gauge(&format!("serve.breaker.{name}.trips")),
            injected_faults: telemetry.gauge(&format!("serve.backend.{name}.injected_faults")),
        }
    }

    /// Records one attempt that exceeded the per-batch timeout
    /// (effective time: wall + virtual).
    pub(crate) fn record_timeout(&self) {
        self.timeouts.inc();
    }

    /// Records one executed batch; a sampled `trace` becomes the latency
    /// bucket's exemplar, linking the aggregate back to the span tree.
    pub(crate) fn record_batch(&self, rows: usize, elapsed_us: u64, trace: TraceId) {
        self.batches.inc();
        self.queries.add(rows as u64);
        self.batch_latency.record_with_exemplar(elapsed_us, trace);
    }
}

/// Shared metrics hub, one per service, backed by the service's
/// [`Telemetry`] domain.
#[derive(Debug)]
pub(crate) struct MetricsHub {
    started: Instant,
    submitted_rows: Arc<Counter>,
    rejected_rows: Arc<Counter>,
    completed_rows: Arc<Counter>,
    batches: Arc<Counter>,
    batch_rows: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    request_latency: Arc<Histogram>,
    /// End-to-end `serve.batch` span durations (oldest enqueue →
    /// delivery); exemplars point a p99 bucket at a full trace.
    batch_duration: Arc<Histogram>,
    /// Exact largest batch (the histogram max is bucket-exact too, but
    /// this keeps the old field's exactness guarantee).
    max_batch_rows: AtomicU64,
    retries: Arc<Counter>,
    recovered: Arc<Counter>,
    shed: Arc<Counter>,
    shed_rows: Arc<Counter>,
    failed: Arc<Counter>,
    failed_rows: Arc<Counter>,
    backends: Vec<BackendRecorder>,
}

impl MetricsHub {
    pub(crate) fn new(telemetry: &Telemetry, backends: &[BackendKind]) -> Self {
        MetricsHub {
            started: Instant::now(),
            submitted_rows: telemetry.counter("serve.queue.submitted_rows"),
            rejected_rows: telemetry.counter("serve.queue.rejected_rows"),
            completed_rows: telemetry.counter("serve.requests.completed_rows"),
            batches: telemetry.counter("serve.batcher.batches"),
            batch_rows: telemetry.histogram("serve.batcher.batch_rows"),
            queue_wait: telemetry.histogram("serve.queue.wait_us"),
            queue_depth: telemetry.gauge("serve.queue.depth"),
            request_latency: telemetry.histogram("serve.request.latency_us"),
            batch_duration: telemetry.histogram("serve.batch.duration_us"),
            max_batch_rows: AtomicU64::new(0),
            retries: telemetry.counter("serve.retry"),
            recovered: telemetry.counter("serve.recovered"),
            shed: telemetry.counter("serve.shed"),
            shed_rows: telemetry.counter("serve.shed_rows"),
            failed: telemetry.counter("serve.failed"),
            failed_rows: telemetry.counter("serve.failed_rows"),
            backends: backends.iter().map(|&k| BackendRecorder::new(telemetry, k)).collect(),
        }
    }

    /// One retry attempt (after a failed/timed-out/corrupt attempt).
    pub(crate) fn record_retry(&self) {
        self.retries.inc();
    }

    /// One batch that ultimately succeeded after at least one retry.
    pub(crate) fn record_recovered(&self) {
        self.recovered.inc();
    }

    /// One batch shed at the deadline (`requests` tickets, `rows` rows).
    pub(crate) fn record_shed(&self, requests: usize, rows: usize) {
        self.shed.add(requests as u64);
        self.shed_rows.add(rows as u64);
    }

    /// One batch that exhausted every resilience avenue.
    pub(crate) fn record_failed(&self, requests: usize, rows: usize) {
        self.failed.add(requests as u64);
        self.failed_rows.add(rows as u64);
    }

    pub(crate) fn record_submit(&self, rows: usize) {
        self.submitted_rows.add(rows as u64);
    }

    pub(crate) fn record_reject(&self, rows: usize) {
        self.rejected_rows.add(rows as u64);
    }

    pub(crate) fn record_batch_formed(&self, rows: usize) {
        self.batches.inc();
        self.batch_rows.record(rows as u64);
        self.max_batch_rows.fetch_max(rows as u64, Ordering::Relaxed);
    }

    /// Enqueue-to-batch-formation wait of one request.
    pub(crate) fn record_queue_wait(&self, wait_us: u64) {
        self.queue_wait.record(wait_us);
    }

    pub(crate) fn record_dispatch(&self, idx: usize) {
        self.backends[idx].dispatches.inc();
    }

    /// Records one delivered request; a sampled `trace` (the batch it
    /// rode in) becomes the latency bucket's exemplar.
    pub(crate) fn record_request_done(&self, rows: usize, latency_us: u64, trace: TraceId) {
        self.completed_rows.add(rows as u64);
        self.request_latency.record_with_exemplar(latency_us, trace);
    }

    /// Records the whole-batch span duration (enqueue→delivery).
    pub(crate) fn record_batch_duration(&self, duration_us: u64, trace: TraceId) {
        self.batch_duration.record_with_exemplar(duration_us, trace);
    }

    pub(crate) fn recorder(&self, idx: usize) -> &BackendRecorder {
        &self.backends[idx]
    }

    /// Builds the [`ServeStats`] surface and refreshes the sampled
    /// gauges (queue depth, scheduler estimates, fallback counts,
    /// breaker states) so a telemetry export taken afterwards is
    /// coherent with it.
    pub(crate) fn snapshot(
        &self,
        queue_rows: usize,
        backend_probe: impl Fn(usize) -> BackendProbe,
        model: ModelLifecycleStats,
    ) -> ServeStats {
        self.queue_depth.set(queue_rows as f64);
        let batches = self.batches.get();
        let completed = self.completed_rows.get();
        let uptime = self.started.elapsed();
        let backends = self
            .backends
            .iter()
            .enumerate()
            .map(|(idx, rec)| {
                let probe = backend_probe(idx);
                rec.ewma_us.set(probe.ewma_us);
                rec.inflight_rows.set(probe.inflight_rows as f64);
                rec.device_fallbacks.set(probe.fallbacks as f64);
                rec.breaker_state.set(probe.breaker_state.as_gauge());
                rec.breaker_trips.set(probe.breaker_trips as f64);
                rec.injected_faults.set(probe.injected_faults as f64);
                let queries = rec.queries.get();
                BackendStats {
                    backend: rec.kind.name().to_string(),
                    batches: rec.batches.get(),
                    queries,
                    share_of_queries: if completed > 0 {
                        queries as f64 / completed as f64
                    } else {
                        0.0
                    },
                    ewma_us_per_query: probe.ewma_us,
                    inflight_rows: probe.inflight_rows,
                    device_fallbacks: probe.fallbacks,
                    timeouts: rec.timeouts.get(),
                    injected_faults: probe.injected_faults,
                    breaker_state: probe.breaker_state.name().to_string(),
                    breaker_trips: probe.breaker_trips,
                    breaker_transitions: probe.breaker_transitions,
                    batch_latency: LatencySummary::from_histogram(&rec.batch_latency.snapshot()),
                }
            })
            .collect();
        ServeStats {
            uptime_ms: uptime.as_millis() as u64,
            submitted_rows: self.submitted_rows.get(),
            rejected_rows: self.rejected_rows.get(),
            completed_rows: completed,
            queue_rows,
            batches,
            mean_batch_occupancy: if batches > 0 { completed as f64 / batches as f64 } else { 0.0 },
            max_batch_occupancy: self.max_batch_rows.load(Ordering::Relaxed),
            throughput_qps: completed as f64 / uptime.as_secs_f64().max(1e-9),
            retries: self.retries.get(),
            recovered_batches: self.recovered.get(),
            shed_requests: self.shed.get(),
            shed_rows: self.shed_rows.get(),
            failed_requests: self.failed.get(),
            failed_rows: self.failed_rows.get(),
            queue_wait: LatencySummary::from_histogram(&self.queue_wait.snapshot()),
            request_latency: LatencySummary::from_histogram(&self.request_latency.snapshot()),
            backends,
            model,
        }
    }
}

/// Model-lifecycle slice of a [`ServeStats`] snapshot: which version is
/// serving, how traffic is routed, and what every published version has
/// done so far.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ModelLifecycleStats {
    /// Version currently serving new batches (1-based).
    pub active_version: u64,
    /// Activation epoch: bumps on every swap (including rollbacks).
    pub epoch: u64,
    /// Total activations since startup.
    pub swaps: u64,
    /// The current route mode, rendered (`single`, `shadow:v2@...`).
    pub route: String,
    /// Aggregate shadow-scoring counters across all candidates.
    pub shadow: ShadowStats,
    /// Per-version breakdown, in publish order.
    pub versions: Vec<VersionStats>,
}

/// Live per-backend readings the hub samples at snapshot time (supplied
/// by the service, which owns the scheduler and backend objects).
#[derive(Debug, Clone, Default)]
pub(crate) struct BackendProbe {
    pub(crate) ewma_us: f64,
    pub(crate) inflight_rows: usize,
    pub(crate) fallbacks: u64,
    pub(crate) injected_faults: u64,
    pub(crate) breaker_state: BreakerState,
    pub(crate) breaker_trips: u64,
    pub(crate) breaker_transitions: Vec<String>,
}

/// Per-backend slice of a [`ServeStats`] snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct BackendStats {
    /// Stable backend name (`cpu-parallel`, ...).
    pub backend: String,
    /// Batches executed.
    pub batches: u64,
    /// Query rows executed.
    pub queries: u64,
    /// Fraction of all completed rows this backend served.
    pub share_of_queries: f64,
    /// The scheduler's current per-query latency estimate (µs).
    pub ewma_us_per_query: f64,
    /// Rows dispatched but not yet completed.
    pub inflight_rows: usize,
    /// Device-refusal fallbacks to the CPU traversal path.
    pub device_fallbacks: u64,
    /// Attempts that exceeded the per-batch timeout (wall + virtual).
    pub timeouts: u64,
    /// Faults injected by the active `FaultPlan` (0 without one).
    pub injected_faults: u64,
    /// Circuit-breaker state: `closed`, `open`, or `half-open`.
    pub breaker_state: String,
    /// Closed→Open and HalfOpen→Open breaker trips.
    pub breaker_trips: u64,
    /// Full breaker transition log (`"closed->open@<seq>"`, ...), in
    /// order — the determinism witness chaos runs compare.
    pub breaker_transitions: Vec<String>,
    /// Wall-clock latency of whole batches on this backend.
    pub batch_latency: LatencySummary,
}

/// Point-in-time service snapshot — the monitoring/bench export surface.
#[derive(Debug, Clone, Serialize)]
pub struct ServeStats {
    pub uptime_ms: u64,
    /// Rows admitted to the queue.
    pub submitted_rows: u64,
    /// Rows refused by admission control.
    pub rejected_rows: u64,
    /// Rows predicted and delivered.
    pub completed_rows: u64,
    /// Rows waiting in the queue right now.
    pub queue_rows: usize,
    /// Batches formed by the dynamic batcher.
    pub batches: u64,
    /// Completed rows per formed batch.
    pub mean_batch_occupancy: f64,
    /// Largest batch formed (rows).
    pub max_batch_occupancy: u64,
    /// Completed rows per second of uptime.
    pub throughput_qps: f64,
    /// Retry attempts across all batches.
    pub retries: u64,
    /// Batches that succeeded after at least one retry.
    pub recovered_batches: u64,
    /// Requests completed with [`crate::ServeError::Shed`].
    pub shed_requests: u64,
    /// Rows in shed requests.
    pub shed_rows: u64,
    /// Requests completed with [`crate::ServeError::BackendFailed`].
    pub failed_requests: u64,
    /// Rows in failed requests.
    pub failed_rows: u64,
    /// Enqueue-to-batch-formation wait over requests.
    pub queue_wait: LatencySummary,
    /// Enqueue-to-delivery latency over whole requests.
    pub request_latency: LatencySummary,
    /// Per-backend breakdown.
    pub backends: Vec<BackendStats>,
    /// Model lifecycle: active version, route mode, per-version counts.
    pub model: ModelLifecycleStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> (Telemetry, MetricsHub) {
        let tel = Telemetry::new();
        let hub = MetricsHub::new(&tel, &BackendKind::ALL);
        (tel, hub)
    }

    #[test]
    fn percentiles_of_known_series_are_bucket_accurate() {
        let (_tel, hub) = hub();
        for v in 1..=100u64 {
            hub.record_request_done(1, v, TraceId::NONE);
        }
        let s = hub.snapshot(0, |_| BackendProbe::default(), ModelLifecycleStats::default());
        let lat = s.request_latency;
        assert_eq!(lat.count, 100);
        assert_eq!(lat.max_us, 100);
        assert!((lat.mean_us - 50.5).abs() < 1e-9, "mean is exact");
        // Bucket-estimated percentiles: within one 12.5% sub-bucket of
        // the exact rank statistic.
        for (est, exact) in [(lat.p50_us, 50u64), (lat.p95_us, 95), (lat.p99_us, 99)] {
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel <= 0.125, "estimate {est} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn snapshot_never_sorts_and_scales_to_large_series() {
        let (_tel, hub) = hub();
        // 2^18 samples used to be the sort cap; record past it and check
        // count/extremes stay exact — snapshot cost is now O(buckets).
        for v in 0..300_000u64 {
            hub.record_request_done(1, v % 5_000, TraceId::NONE);
        }
        let s = hub.snapshot(0, |_| BackendProbe::default(), ModelLifecycleStats::default());
        assert_eq!(s.request_latency.count, 300_000);
        assert_eq!(s.request_latency.max_us, 4_999);
        assert!(s.request_latency.p50_us <= s.request_latency.p95_us);
        assert!(s.request_latency.p95_us <= s.request_latency.p99_us);
    }

    #[test]
    fn metrics_surface_in_the_telemetry_registry() {
        let (tel, hub) = hub();
        hub.record_submit(4);
        hub.record_batch_formed(4);
        hub.record_dispatch(2);
        hub.recorder(2).record_batch(4, 250, TraceId(9));
        hub.record_request_done(4, 400, TraceId(9));
        hub.record_batch_duration(450, TraceId(9));
        hub.record_retry();
        hub.record_recovered();
        hub.record_shed(1, 2);
        hub.record_failed(1, 3);
        hub.recorder(2).record_timeout();
        // Index 2 is gpu-sim-hybrid in BackendKind::ALL order.
        let _ = hub.snapshot(
            2,
            |idx| {
                if idx == 2 {
                    BackendProbe {
                        ewma_us: 1.5,
                        inflight_rows: 3,
                        breaker_state: BreakerState::HalfOpen,
                        breaker_trips: 2,
                        ..BackendProbe::default()
                    }
                } else {
                    BackendProbe::default()
                }
            },
            ModelLifecycleStats::default(),
        );
        let m = tel.metrics_snapshot();
        assert_eq!(m.counter("serve.queue.submitted_rows"), Some(4));
        assert_eq!(m.counter("serve.batcher.batches"), Some(1));
        assert_eq!(m.counter("serve.scheduler.gpu-sim-hybrid.dispatches"), Some(1));
        assert_eq!(m.counter("serve.backend.gpu-sim-hybrid.queries"), Some(4));
        assert_eq!(m.gauge("serve.queue.depth"), Some(2.0));
        assert_eq!(m.gauge("serve.scheduler.gpu-sim-hybrid.ewma_us"), Some(1.5));
        assert_eq!(m.counter("serve.retry"), Some(1));
        assert_eq!(m.counter("serve.recovered"), Some(1));
        assert_eq!(m.counter("serve.shed"), Some(1));
        assert_eq!(m.counter("serve.shed_rows"), Some(2));
        assert_eq!(m.counter("serve.failed_rows"), Some(3));
        assert_eq!(m.counter("serve.backend.gpu-sim-hybrid.timeouts"), Some(1));
        // Breaker gauges: every backend gets one, refreshed at snapshot.
        assert_eq!(m.gauge("serve.breaker.gpu-sim-hybrid.state"), Some(2.0));
        assert_eq!(m.gauge("serve.breaker.gpu-sim-hybrid.trips"), Some(2.0));
        assert_eq!(m.gauge("serve.breaker.cpu-parallel.state"), Some(0.0));
        assert_eq!(
            m.histogram("serve.backend.gpu-sim-hybrid.batch_latency_us").map(|h| h.count),
            Some(1)
        );
        // The tail exemplar of every traced series resolves to the batch.
        for series in ["serve.backend.gpu-sim-hybrid.batch_latency_us", "serve.batch.duration_us"] {
            let h = m.histogram(series).expect(series);
            assert_eq!(h.exemplar_for_quantile(0.99).map(|e| e.trace), Some(TraceId(9)));
        }
    }

    #[test]
    fn single_sample_summary() {
        let (_tel, hub) = hub();
        hub.record_request_done(1, 7, TraceId::NONE);
        let lat = hub
            .snapshot(0, |_| BackendProbe::default(), ModelLifecycleStats::default())
            .request_latency;
        assert_eq!((lat.p50_us, lat.p95_us, lat.p99_us, lat.max_us), (7, 7, 7, 7));
    }
}
