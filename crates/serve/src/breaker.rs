//! Per-backend circuit breaker (closed → open → half-open).
//!
//! The breaker watches a sliding window of batch outcomes for one
//! backend. While **closed** it admits everything; once the window holds
//! enough samples and the failure rate crosses the threshold it
//! **opens**, and the scheduler routes around the backend. Time in the
//! open state is counted in *dispatch sequence numbers* — the service's
//! global dispatch counter — rather than wall-clock time, so breaker
//! behavior in seeded chaos runs is exactly reproducible. After the
//! cooldown the breaker turns **half-open**: it admits a single probe
//! batch; if the probe succeeds the breaker closes (window cleared),
//! if it fails the breaker re-opens for another cooldown.
//!
//! Every transition is appended to a per-breaker log
//! (`"closed->open@<seq>"`, ...) that chaos tests compare across runs
//! to prove determinism.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Tuning for one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding outcome-window length (batches).
    pub window: usize,
    /// Minimum samples in the window before the breaker may trip.
    pub min_samples: usize,
    /// Failure-rate threshold in `[0, 1]`; at or above it, trip.
    pub failure_rate: f64,
    /// Open-state cooldown, counted in global dispatch sequence numbers
    /// (not wall time — keeps chaos runs deterministic).
    pub cooldown_dispatches: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { window: 16, min_samples: 8, failure_rate: 0.5, cooldown_dispatches: 8 }
    }
}

/// Breaker state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal operation; all batches admitted.
    #[default]
    Closed,
    /// Tripped; the scheduler routes around this backend until the
    /// cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe batch is admitted to decide
    /// between closing and re-opening.
    HalfOpen,
}

impl BreakerState {
    /// Stable name used in metrics, stats, and transition logs.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Numeric encoding for the `serve.breaker.<name>.state` gauge
    /// (0 = closed, 1 = open, 2 = half-open).
    pub fn as_gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    outcomes: VecDeque<bool>,
    /// First dispatch seq at which an Open breaker may half-open.
    open_until: u64,
    /// Whether the half-open probe slot is taken (in flight).
    probe_inflight: bool,
    transitions: Vec<String>,
}

/// Windowed failure-rate circuit breaker for one backend.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    pub(crate) fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                outcomes: VecDeque::new(),
                open_until: 0,
                probe_inflight: false,
                transitions: Vec::new(),
            }),
            trips: AtomicU64::new(0),
        }
    }

    /// Whether a batch dispatched at global sequence `seq` may use this
    /// backend. Transitions Open → HalfOpen when the cooldown has
    /// elapsed, and books the single half-open probe slot.
    /// Breaker locks recover from poisoning (here and below): the state
    /// machine's invariants hold on entry to every method, so a panic in
    /// some other worker mid-update is no reason to wedge dispatch for
    /// the rest of the pool.
    pub(crate) fn admit(&self, seq: u64) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if seq >= inner.open_until {
                    Self::transition(&mut inner, BreakerState::HalfOpen, seq);
                    inner.probe_inflight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    false
                } else {
                    inner.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Records a batch outcome for this backend. `seq` is the global
    /// dispatch sequence of the *recording* moment, used to stamp
    /// transitions and start cooldowns.
    pub(crate) fn record(&self, success: bool, seq: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.state {
            BreakerState::Closed => {
                inner.outcomes.push_back(success);
                while inner.outcomes.len() > self.config.window {
                    inner.outcomes.pop_front();
                }
                if inner.outcomes.len() >= self.config.min_samples.max(1) {
                    let failures = inner.outcomes.iter().filter(|&&ok| !ok).count();
                    let rate = failures as f64 / inner.outcomes.len() as f64;
                    if rate >= self.config.failure_rate {
                        self.trips.fetch_add(1, Ordering::Relaxed);
                        inner.open_until = seq + self.config.cooldown_dispatches;
                        inner.outcomes.clear();
                        Self::transition(&mut inner, BreakerState::Open, seq);
                    }
                }
            }
            BreakerState::HalfOpen => {
                inner.probe_inflight = false;
                if success {
                    Self::transition(&mut inner, BreakerState::Closed, seq);
                } else {
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    inner.open_until = seq + self.config.cooldown_dispatches;
                    Self::transition(&mut inner, BreakerState::Open, seq);
                }
            }
            // Late results for batches dispatched before the trip carry
            // no new information about the (cleared) window.
            BreakerState::Open => {}
        }
    }

    fn transition(inner: &mut Inner, to: BreakerState, seq: u64) {
        let entry = format!("{}->{}@{seq}", inner.state.name(), to.name());
        inner.transitions.push(entry);
        inner.state = to;
    }

    pub(crate) fn state(&self) -> BreakerState {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).state
    }

    /// Closed→Open and HalfOpen→Open trips so far.
    pub(crate) fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// The full transition log (`"closed->open@12"`, ...), in order.
    pub(crate) fn transitions(&self) -> Vec<String> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).transitions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 4,
            failure_rate: 0.5,
            cooldown_dispatches: 3,
        })
    }

    #[test]
    fn trips_at_failure_rate_and_reopens_from_failed_probe() {
        let b = breaker();
        assert_eq!(b.state(), BreakerState::Closed);
        // 2 failures in a window of 4 = 50% >= threshold: trips on the
        // 4th sample.
        b.record(true, 0);
        b.record(false, 1);
        b.record(true, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false, 3);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);

        // Open until seq 3 + 3 = 6: rejects before, probes at 6.
        assert!(!b.admit(4));
        assert!(!b.admit(5));
        assert!(b.admit(6));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Only one probe slot while it is in flight.
        assert!(!b.admit(6));

        // Failed probe: back to Open with a fresh cooldown.
        b.record(false, 7);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.admit(8));
        assert!(b.admit(10));

        // Successful probe closes and clears the window.
        b.record(true, 11);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.transitions(),
            vec![
                "closed->open@3",
                "open->half-open@6",
                "half-open->open@7",
                "open->half-open@10",
                "half-open->closed@11",
            ]
        );
    }

    #[test]
    fn needs_min_samples_before_tripping() {
        let b = CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_rate: 0.5,
            cooldown_dispatches: 2,
        });
        b.record(false, 0);
        b.record(false, 1);
        b.record(false, 2);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.record(false, 3);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn window_slides() {
        let b = breaker();
        // Failures spread thinner than the 4-wide window's 50% threshold
        // never trip: every window holds at most one of them.
        for (i, ok) in [false, true, true, true, false, true, true, true].into_iter().enumerate() {
            b.record(ok, i as u64);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        // Two *consecutive* failures concentrate in one window and trip.
        b.record(false, 8);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false, 9);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn late_results_while_open_are_ignored() {
        let b = breaker();
        for seq in 0..4 {
            b.record(false, seq);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let transitions_before = b.transitions().len();
        b.record(true, 4); // straggler from before the trip
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().len(), transitions_before);
    }

    #[test]
    fn state_names_and_gauge_encoding_are_stable() {
        assert_eq!(BreakerState::Closed.name(), "closed");
        assert_eq!(BreakerState::Open.name(), "open");
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
        assert_eq!(BreakerState::Closed.as_gauge(), 0.0);
        assert_eq!(BreakerState::Open.as_gauge(), 1.0);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 2.0);
    }
}
