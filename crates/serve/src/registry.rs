//! Versioned model registry with atomic hot-swap.
//!
//! The registry owns every [`ServeModel`] the service has ever published,
//! each paired with its own pre-built executor set (one [`Backend`] per
//! pool slot — backends embed model artifacts, so they are versioned
//! together with the model). Swapping the active version is **epoch-based
//! `Arc` handoff**:
//!
//! * the batcher pins `Arc<VersionEntry>` clones into formed batches, so
//!   an in-flight batch finishes on the exact version it was dispatched
//!   with no matter how many activations happen mid-flight;
//! * [`ModelRegistry::activate`] is a single pointer store under a short
//!   lock — no barrier, no draining, no ticket is ever dropped by a swap;
//! * retired versions stay alive (and resident in the registry) until
//!   their last in-flight batch drops its pin, then idle at the cost of
//!   one `Arc` — which is also what makes **rollback a plain
//!   re-activation** of a prior version rather than a special recovery
//!   path.
//!
//! Every version records into its own telemetry sub-domain
//! (`serve.model.v<N>.*`), and the registry itself exports the active
//! version, the epoch counter, and the swap count, so dashboards can
//! correlate a latency shift with the exact activation that caused it.

use crate::backend::{make_backend, Backend, BackendKind};
use crate::error::ServeError;
use crate::metrics::LatencySummary;
use crate::model::ServeModel;
use rfx_core::footprint::LayoutFootprint;
use rfx_core::pack::PackPlan;
use rfx_kernels::VotePolicy;
use rfx_telemetry::{Counter, Gauge, Histogram, Telemetry, TraceId};
use serde::Serialize;
use std::fmt;
use std::num::NonZeroU64;
use std::sync::{Arc, Mutex, PoisonError};

/// Identifier of one published model version. Versions are 1-based and
/// strictly increasing in publish order; `v1` is the model the service
/// started with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelVersion(NonZeroU64);

impl ModelVersion {
    /// The numeric version (1-based).
    pub fn get(self) -> u64 {
        self.0.get()
    }

    /// Reconstructs a version from its raw number; `None` for 0 (the
    /// "not served yet" sentinel in ticket slots).
    pub fn from_raw(raw: u64) -> Option<ModelVersion> {
        NonZeroU64::new(raw).map(ModelVersion)
    }
}

impl fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Per-version telemetry handles (`serve.model.v<N>.*`), registered once
/// at publish time.
#[derive(Debug)]
pub(crate) struct VersionRecorder {
    batches: Arc<Counter>,
    rows: Arc<Counter>,
    batch_latency: Arc<Histogram>,
    shadow_batches: Arc<Counter>,
    shadow_rows: Arc<Counter>,
    shadow_agree_rows: Arc<Counter>,
}

impl VersionRecorder {
    fn new(telemetry: &Telemetry, version: ModelVersion) -> Self {
        VersionRecorder {
            batches: telemetry.counter(&format!("serve.model.{version}.batches")),
            rows: telemetry.counter(&format!("serve.model.{version}.rows")),
            batch_latency: telemetry.histogram(&format!("serve.model.{version}.batch_latency_us")),
            shadow_batches: telemetry.counter(&format!("serve.model.{version}.shadow_batches")),
            shadow_rows: telemetry.counter(&format!("serve.model.{version}.shadow_rows")),
            shadow_agree_rows: telemetry
                .counter(&format!("serve.model.{version}.shadow_agree_rows")),
        }
    }

    /// Records one batch served *live* by this version.
    pub(crate) fn record_batch(&self, rows: usize, elapsed_us: u64, trace: TraceId) {
        self.batches.inc();
        self.rows.add(rows as u64);
        self.batch_latency.record_with_exemplar(elapsed_us, trace);
    }

    /// Records one shadow-scored batch against this (candidate) version:
    /// `agree_rows` of `rows` matched the served model's labels.
    pub(crate) fn record_shadow(&self, rows: usize, agree_rows: usize) {
        self.shadow_batches.inc();
        self.shadow_rows.add(rows as u64);
        self.shadow_agree_rows.add(agree_rows as u64);
    }
}

/// One published version: the immutable model, its executor set, and its
/// telemetry recorder. Batches pin an `Arc` of this for their whole
/// flight — the handoff unit of the hot-swap protocol.
pub(crate) struct VersionEntry {
    pub(crate) version: ModelVersion,
    pub(crate) model: ServeModel,
    /// One backend per pool slot, same order as `ServeConfig::backends`.
    pub(crate) backends: Vec<Box<dyn Backend + Sync>>,
    /// Per-slot resident footprints, computed **once** at publish.
    /// Activation re-exports gauges from this cache instead of re-walking
    /// every backend's forest layout on each swap.
    pub(crate) resident: Vec<LayoutFootprint>,
    pub(crate) recorder: VersionRecorder,
}

impl VersionEntry {
    /// Builds one version's executor set (and its footprint cache) —
    /// the single construction path shared by `v1` and every later
    /// publish, so the policy and the cache cannot diverge between them.
    fn build(
        version: ModelVersion,
        model: ServeModel,
        kinds: &[BackendKind],
        vote_policy: VotePolicy,
        pack: Option<PackPlan>,
        telemetry: &Telemetry,
    ) -> Arc<VersionEntry> {
        let backends: Vec<Box<dyn Backend + Sync>> =
            kinds.iter().map(|&k| make_backend(k, &model, vote_policy, pack)).collect();
        let resident = backends.iter().map(|b| b.resident_footprint()).collect();
        Arc::new(VersionEntry {
            version,
            backends,
            resident,
            recorder: VersionRecorder::new(telemetry, version),
            model,
        })
    }
}

impl fmt::Debug for VersionEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionEntry")
            .field("version", &self.version)
            .field("backends", &self.backends.len())
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct Inner {
    versions: Vec<Arc<VersionEntry>>,
    active: Arc<VersionEntry>,
    /// Bumps on every activation. A batch formed under epoch `e` may
    /// deliver under any later epoch — the pinned entry, not the epoch,
    /// decides which model serves it.
    epoch: u64,
}

/// The versioned model store. All mutation happens under one short-held
/// mutex (publish and activate are control-plane rare); the data plane
/// only clones `Arc`s out of it.
#[derive(Debug)]
pub(crate) struct ModelRegistry {
    inner: Mutex<Inner>,
    kinds: Vec<BackendKind>,
    vote_policy: VotePolicy,
    /// Registry-wide packing plan: like the vote policy, it reaches the
    /// executor set of every version published later, so a hot-swapped
    /// model is packed exactly as the one it replaces.
    pack: Option<PackPlan>,
    telemetry: Telemetry,
    active_version_gauge: Arc<Gauge>,
    epoch_gauge: Arc<Gauge>,
    swaps: Arc<Counter>,
}

impl ModelRegistry {
    /// Registers `model` as `v1` and activates it. `vote_policy` is the
    /// registry-wide engine policy: every version published later builds
    /// its executors with the same policy.
    pub(crate) fn new(
        model: ServeModel,
        kinds: &[BackendKind],
        vote_policy: VotePolicy,
        pack: Option<PackPlan>,
        telemetry: &Telemetry,
    ) -> Self {
        let version = ModelVersion::from_raw(1).unwrap();
        let entry = VersionEntry::build(version, model, kinds, vote_policy, pack, telemetry);
        let active_version_gauge = telemetry.gauge("serve.model.active_version");
        let epoch_gauge = telemetry.gauge("serve.model.epoch");
        active_version_gauge.set(1.0);
        epoch_gauge.set(0.0);
        Self::export_resident_bytes(telemetry, &entry);
        ModelRegistry {
            inner: Mutex::new(Inner {
                versions: vec![Arc::clone(&entry)],
                active: entry,
                epoch: 0,
            }),
            kinds: kinds.to_vec(),
            vote_policy,
            pack,
            telemetry: telemetry.clone(),
            active_version_gauge,
            epoch_gauge,
            swaps: telemetry.counter("serve.model.swaps"),
        }
    }

    /// Publishes `model` as the next version **without** activating it.
    /// The model must be shape-compatible with `v1` (same feature width
    /// and class count) — the queue holds feature vectors of one width,
    /// and tickets promise labels from one class range.
    pub(crate) fn publish(&self, model: ServeModel) -> Result<ModelVersion, ServeError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let v1 = &inner.versions[0].model;
        if model.num_features() != v1.num_features() {
            return Err(ServeError::IncompatibleModel {
                reason: format!(
                    "feature width {} != serving width {}",
                    model.num_features(),
                    v1.num_features()
                ),
            });
        }
        if model.num_classes() != v1.num_classes() {
            return Err(ServeError::IncompatibleModel {
                reason: format!(
                    "class count {} != serving count {}",
                    model.num_classes(),
                    v1.num_classes()
                ),
            });
        }
        let version = ModelVersion::from_raw(inner.versions.len() as u64 + 1).unwrap();
        let entry = VersionEntry::build(
            version,
            model,
            &self.kinds,
            self.vote_policy,
            self.pack,
            &self.telemetry,
        );
        inner.versions.push(entry);
        Ok(version)
    }

    /// Makes `version` the active (serving) version and returns the
    /// previously active one. This is the whole hot-swap: one pointer
    /// store plus an epoch bump — in-flight batches keep their pinned
    /// entries, new batches pick up the new pointer. Re-activating an
    /// older version IS rollback; there is no other mechanism.
    pub(crate) fn activate(&self, version: ModelVersion) -> Result<ModelVersion, ServeError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = Self::lookup(&inner, version)?;
        let previous = inner.active.version;
        inner.active = entry;
        inner.epoch += 1;
        self.active_version_gauge.set(version.get() as f64);
        self.epoch_gauge.set(inner.epoch as f64);
        self.swaps.inc();
        Self::export_resident_bytes(&self.telemetry, &inner.active);
        Ok(previous)
    }

    /// Points the per-backend `serve.backend.<name>.resident_bytes`
    /// gauges at the newly active version's executors. Each backend
    /// reports the footprint of the layout it **actually traverses** —
    /// quantized backends report compressed bytes — so these gauges agree
    /// with the per-tree cost `EnginePlan::auto` bin-packs shards from.
    /// Reads the footprints cached on the entry at publish time: a swap
    /// is a pointer store plus gauge writes, never a forest re-walk.
    fn export_resident_bytes(telemetry: &Telemetry, entry: &VersionEntry) {
        for (backend, footprint) in entry.backends.iter().zip(&entry.resident) {
            telemetry
                .gauge(&format!("serve.backend.{}.resident_bytes", backend.kind().name()))
                .set(footprint.total() as f64);
        }
    }

    fn lookup(inner: &Inner, version: ModelVersion) -> Result<Arc<VersionEntry>, ServeError> {
        inner
            .versions
            .get(version.get() as usize - 1)
            .cloned()
            .ok_or(ServeError::UnknownVersion { version: version.get() })
    }

    /// The entry new batches should serve with (pin it — the `Arc` is
    /// the in-flight guarantee).
    pub(crate) fn active(&self) -> Arc<VersionEntry> {
        Arc::clone(&self.inner.lock().unwrap_or_else(PoisonError::into_inner).active)
    }

    /// A specific published version's entry.
    pub(crate) fn get(&self, version: ModelVersion) -> Result<Arc<VersionEntry>, ServeError> {
        Self::lookup(&self.inner.lock().unwrap_or_else(PoisonError::into_inner), version)
    }

    pub(crate) fn active_version(&self) -> ModelVersion {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).active.version
    }

    /// Every published version, in publish order.
    pub(crate) fn versions(&self) -> Vec<ModelVersion> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .versions
            .iter()
            .map(|e| e.version)
            .collect()
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).epoch
    }

    /// Device-refusal fallbacks taken in pool slot `idx`, summed across
    /// every version that ever executed there (the stats surface reports
    /// per-slot cumulative counts, which must not reset on a swap).
    pub(crate) fn slot_fallbacks(&self, idx: usize) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .versions
            .iter()
            .map(|e| e.backends[idx].fallbacks())
            .sum()
    }

    pub(crate) fn swaps(&self) -> u64 {
        self.swaps.get()
    }

    /// Per-version stats rows for the [`crate::ServeStats`] surface.
    pub(crate) fn version_stats(&self) -> Vec<VersionStats> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .versions
            .iter()
            .map(|e| VersionStats {
                version: e.version.get(),
                active: e.version == inner.active.version,
                batches: e.recorder.batches.get(),
                rows: e.recorder.rows.get(),
                shadow_batches: e.recorder.shadow_batches.get(),
                shadow_rows: e.recorder.shadow_rows.get(),
                shadow_agree_rows: e.recorder.shadow_agree_rows.get(),
                batch_latency: LatencySummary::from_histogram(&e.recorder.batch_latency.snapshot()),
            })
            .collect()
    }
}

/// Per-version slice of a [`crate::ServeStats`] snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct VersionStats {
    /// Numeric version (1-based publish order).
    pub version: u64,
    /// Whether this version is currently serving new batches.
    pub active: bool,
    /// Batches served live by this version.
    pub batches: u64,
    /// Rows served live by this version.
    pub rows: u64,
    /// Batches shadow-scored against this version as the candidate.
    pub shadow_batches: u64,
    /// Rows shadow-scored against this version.
    pub shadow_rows: u64,
    /// Shadow rows whose candidate label agreed with the served label.
    pub shadow_agree_rows: u64,
    /// Wall latency of live batches on this version.
    pub batch_latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfx_forest::forest::RandomForest;
    use rfx_forest::tree::DecisionTree;
    use rfx_fpga_sim::FpgaConfig;
    use rfx_gpu_sim::GpuConfig;

    fn model(label: u32) -> ServeModel {
        // Constant-label stump forests: distinguishable by prediction.
        let trees = vec![DecisionTree::leaf(label); 3];
        let forest = RandomForest::from_trees(trees, 4, 2).unwrap();
        ServeModel::with_devices(forest, GpuConfig::tiny_test(), FpgaConfig::tiny_test()).unwrap()
    }

    fn registry() -> ModelRegistry {
        ModelRegistry::new(
            model(0),
            &[BackendKind::CpuSharded],
            VotePolicy::Exact,
            None,
            &Telemetry::new(),
        )
    }

    #[test]
    fn resident_bytes_gauges_track_the_active_layouts() {
        let tel = Telemetry::new();
        let reg = ModelRegistry::new(
            model(0),
            &[BackendKind::CpuSharded, BackendKind::CpuShardedQ8],
            VotePolicy::Exact,
            None,
            &tel,
        );
        let f32_bytes = tel.gauge("serve.backend.cpu-sharded.resident_bytes").get();
        let q8_bytes = tel.gauge("serve.backend.cpu-sharded-q8.resident_bytes").get();
        assert!(f32_bytes > 0.0 && q8_bytes > 0.0);
        assert!(q8_bytes < f32_bytes, "quantized bytes {q8_bytes} < f32 bytes {f32_bytes}");
        // Activation re-exports the gauges for the new active version.
        let v2 = reg.publish(model(1)).unwrap();
        reg.activate(v2).unwrap();
        assert!(tel.gauge("serve.backend.cpu-sharded-q8.resident_bytes").get() > 0.0);
    }

    #[test]
    fn cached_resident_footprints_match_the_live_backends() {
        let reg = ModelRegistry::new(
            model(0),
            &[BackendKind::CpuSharded, BackendKind::CpuShardedQ8],
            VotePolicy::Exact,
            None,
            &Telemetry::new(),
        );
        let v2 = reg.publish(model(1)).unwrap();
        for entry in [reg.active(), reg.get(v2).unwrap()] {
            assert_eq!(entry.resident.len(), entry.backends.len());
            for (backend, cached) in entry.backends.iter().zip(&entry.resident) {
                assert_eq!(
                    cached.total(),
                    backend.resident_footprint().total(),
                    "cache diverged for {}",
                    backend.kind()
                );
            }
        }
    }

    #[test]
    fn registry_policy_reaches_published_backends() {
        let reg = ModelRegistry::new(
            model(0),
            &[BackendKind::CpuSharded],
            VotePolicy::EarlyExit { slack: 2 },
            None,
            &Telemetry::new(),
        );
        let v2 = reg.publish(model(1)).unwrap();
        for entry in [reg.active(), reg.get(v2).unwrap()] {
            let attrs = entry.backends[0].tile_attrs(64);
            let policy = attrs.iter().find(|(k, _)| *k == "vote_policy");
            assert_eq!(policy.map(|(_, v)| v.as_str()), Some("early-exit(slack=2)"));
        }
    }

    #[test]
    fn versions_are_one_based_and_monotone() {
        let reg = registry();
        assert_eq!(reg.active_version().get(), 1);
        assert_eq!(reg.publish(model(1)).unwrap().get(), 2);
        assert_eq!(reg.publish(model(0)).unwrap().get(), 3);
        assert_eq!(reg.versions().iter().map(|v| v.get()).collect::<Vec<_>>(), vec![1, 2, 3]);
        // Publish alone never changes what is serving.
        assert_eq!(reg.active_version().get(), 1);
        assert_eq!(reg.epoch(), 0);
    }

    #[test]
    fn activate_returns_previous_and_bumps_epoch() {
        let reg = registry();
        let v2 = reg.publish(model(1)).unwrap();
        let prev = reg.activate(v2).unwrap();
        assert_eq!(prev.get(), 1);
        assert_eq!(reg.active_version(), v2);
        assert_eq!(reg.epoch(), 1);
        assert_eq!(reg.swaps(), 1);
    }

    #[test]
    fn rollback_is_a_plain_reactivation() {
        // The acceptance property: rolling back needs no special path —
        // the prior version is still registered, so activating it again
        // is the same operation as any forward swap.
        let reg = registry();
        let v1 = reg.active_version();
        let v2 = reg.publish(model(1)).unwrap();
        reg.activate(v2).unwrap();
        let prev = reg.activate(v1).unwrap();
        assert_eq!(prev, v2);
        assert_eq!(reg.active_version(), v1);
        assert_eq!(reg.epoch(), 2, "rollback is just another epoch bump");
        // And forward again: versions never disappear.
        reg.activate(v2).unwrap();
        assert_eq!(reg.active_version(), v2);
    }

    #[test]
    fn entries_survive_while_pinned() {
        let reg = registry();
        let v1_entry = reg.active();
        let v2 = reg.publish(model(1)).unwrap();
        reg.activate(v2).unwrap();
        // The old entry is still fully usable through the pin: this is
        // what lets an in-flight batch deliver on its dispatch version.
        assert_eq!(v1_entry.version.get(), 1);
        assert_eq!(v1_entry.model.num_features(), 4);
        assert!(Arc::strong_count(&v1_entry) >= 2, "registry retains retired versions");
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let reg = registry();
        let ghost = ModelVersion::from_raw(9).unwrap();
        assert!(matches!(reg.activate(ghost), Err(ServeError::UnknownVersion { version: 9 })));
        assert!(reg.get(ghost).is_err());
    }

    #[test]
    fn incompatible_models_are_rejected_at_publish() {
        let reg = registry();
        // Wrong feature width.
        let narrow = RandomForest::from_trees(vec![DecisionTree::leaf(0)], 3, 2).unwrap();
        let narrow =
            ServeModel::with_devices(narrow, GpuConfig::tiny_test(), FpgaConfig::tiny_test())
                .unwrap();
        assert!(matches!(reg.publish(narrow), Err(ServeError::IncompatibleModel { .. })));
        // Wrong class count.
        let wide = RandomForest::from_trees(vec![DecisionTree::leaf(0)], 4, 5).unwrap();
        let wide = ServeModel::with_devices(wide, GpuConfig::tiny_test(), FpgaConfig::tiny_test())
            .unwrap();
        assert!(matches!(reg.publish(wide), Err(ServeError::IncompatibleModel { .. })));
        // Nothing was registered by the failed publishes.
        assert_eq!(reg.versions().len(), 1);
    }

    #[test]
    fn model_version_raw_round_trip() {
        assert_eq!(ModelVersion::from_raw(0), None);
        let v = ModelVersion::from_raw(7).unwrap();
        assert_eq!(v.get(), 7);
        assert_eq!(v.to_string(), "v7");
    }
}
