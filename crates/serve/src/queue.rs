//! Bounded request queue with dynamic batch formation.
//!
//! Admission is bounded in *rows* (a micro-batch of 32 queries occupies
//! 32 slots), so a flood of large micro-batches trips the same
//! [`ServeError::Overloaded`] back-pressure as a flood of singles. Batch
//! collection implements the two flush rules of the dynamic batcher:
//!
//! * **size flush** — a batch closes as soon as `max_batch_size` rows are
//!   waiting;
//! * **deadline flush** — otherwise it closes `max_batch_delay` after the
//!   *oldest* queued request arrived, bounding added latency under trickle
//!   load.
//!
//! A micro-batch larger than `max_batch_size` is never split across
//! batches — it forms its own oversized batch (requests are atomic).

use crate::error::ServeError;
use crate::router::Arm;
use crate::ticket::Slot;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One admitted request: its feature rows and the completion slot.
#[derive(Debug)]
pub(crate) struct Pending {
    /// Row-major feature data, `rows * num_features` long.
    pub features: Vec<f32>,
    /// Number of query rows.
    pub rows: usize,
    /// Completion slot shared with the client's [`crate::Ticket`].
    pub slot: Arc<Slot>,
    /// Traffic arm assigned at admission (deterministic hash of the
    /// admission sequence number; always [`Arm::A`] outside an A/B
    /// split). The batcher partitions batches by arm so one batch is
    /// always served by exactly one model version.
    pub arm: Arm,
}

impl Drop for Pending {
    fn drop(&mut self) {
        // Safety net: a request dropped before its worker fulfilled it
        // (worker panic, teardown race) must not leave waiters blocked.
        // `fulfill` is a no-op once a real result landed.
        self.slot.fulfill(Err(ServeError::Dropped));
    }
}

#[derive(Debug)]
struct Inner {
    entries: VecDeque<Pending>,
    /// Total rows across `entries` (the admission-control gauge).
    rows: usize,
    closed: bool,
}

/// Thread-safe bounded queue shared by clients (push) and the batcher
/// thread (collect).
#[derive(Debug)]
pub(crate) struct RequestQueue {
    inner: Mutex<Inner>,
    arrived: Condvar,
    capacity: usize,
}

impl RequestQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        RequestQueue {
            inner: Mutex::new(Inner { entries: VecDeque::new(), rows: 0, closed: false }),
            arrived: Condvar::new(),
            capacity,
        }
    }

    /// Admits a request or rejects it with a typed error. Never blocks —
    /// back-pressure is the client's problem by design.
    ///
    /// Locks recover from poisoning throughout this queue: a client
    /// thread that panics mid-push must not wedge the batcher (and with
    /// it the whole service) — the queue's invariants are re-established
    /// by construction on every acquisition, so the poison flag carries
    /// no information worth cascading a panic for.
    pub(crate) fn try_push(&self, pending: Pending) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        if inner.rows + pending.rows > self.capacity {
            return Err(ServeError::Overloaded {
                queued_rows: inner.rows,
                capacity: self.capacity,
            });
        }
        inner.rows += pending.rows;
        inner.entries.push_back(pending);
        self.arrived.notify_all();
        Ok(())
    }

    /// Rows currently queued (admission gauge; also exported in stats).
    pub(crate) fn depth_rows(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).rows
    }

    /// Stops admission. Queued requests remain and will still be drained
    /// by [`RequestQueue::collect_batch`].
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        self.arrived.notify_all();
    }

    /// Blocks until a batch is ready per the flush rules and removes it
    /// from the queue, returning the batch together with the rows still
    /// queued behind it (the backlog depth the batch left behind — a span
    /// attribute, measured here to avoid re-locking). Returns `None` only
    /// when the queue is closed *and* fully drained — the batcher
    /// thread's exit condition.
    pub(crate) fn collect_batch(
        &self,
        max_rows: usize,
        max_delay: Duration,
    ) -> Option<(Vec<Pending>, usize)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            // Wait for the first request (or shutdown).
            while inner.entries.is_empty() {
                if inner.closed {
                    return None;
                }
                inner = self.arrived.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
            // A batch is forming: flush on size, deadline, or shutdown
            // (drain immediately — no point honoring the deadline when no
            // more arrivals are possible).
            let deadline = inner.entries.front().unwrap().slot.enqueued + max_delay;
            while inner.rows < max_rows && !inner.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = self
                    .arrived
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
                if inner.entries.is_empty() {
                    // Raced with nothing (only this thread pops); treat as
                    // spurious and restart from the outer wait.
                    break;
                }
            }
            if inner.entries.is_empty() {
                continue;
            }
            // Form the batch: take whole requests front-to-back until the
            // row budget is met. An oversized first request rides alone.
            let mut batch = Vec::new();
            let mut rows = 0usize;
            while let Some(front) = inner.entries.front() {
                if !batch.is_empty() && rows + front.rows > max_rows {
                    break;
                }
                let taken = inner.entries.pop_front().unwrap();
                rows += taken.rows;
                inner.rows -= taken.rows;
                batch.push(taken);
                if rows >= max_rows {
                    break;
                }
            }
            debug_assert!(!batch.is_empty());
            return Some((batch, inner.rows));
        }
    }
}
