//! Completion tickets: the client-side handle for an in-flight request.

use crate::error::ServeError;
use rfx_core::Label;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Shared completion slot between the client and the executor.
#[derive(Debug)]
pub(crate) struct Slot {
    state: Mutex<Option<Result<Vec<Label>, ServeError>>>,
    done: Condvar,
    /// When the request entered the queue — the request-latency clock.
    pub(crate) enqueued: Instant,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(None), done: Condvar::new(), enqueued: Instant::now() })
    }

    pub(crate) fn fulfill(&self, result: Result<Vec<Label>, ServeError>) {
        let mut state = self.state.lock().unwrap();
        if state.is_none() {
            *state = Some(result);
            self.done.notify_all();
        }
    }
}

/// Handle returned by [`crate::RfxServe::submit`]: blocks until the batch
/// containing this request has been executed by some backend.
#[derive(Debug, Clone)]
pub struct Ticket {
    slot: Arc<Slot>,
    rows: usize,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<Slot>, rows: usize) -> Self {
        Ticket { slot, rows }
    }

    /// Number of query rows this ticket covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Blocks until the prediction is available and returns one label per
    /// submitted row.
    pub fn wait(&self) -> Result<Vec<Label>, ServeError> {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self.slot.done.wait(state).unwrap();
        }
    }

    /// [`Ticket::wait`] for single-row submissions.
    pub fn wait_one(&self) -> Result<Label, ServeError> {
        let labels = self.wait()?;
        debug_assert_eq!(labels.len(), 1, "wait_one on a micro-batch ticket");
        Ok(labels[0])
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.slot.state.lock().unwrap().is_some()
    }
}
