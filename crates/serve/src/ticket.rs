//! Completion tickets: the client-side handle for an in-flight request.

use crate::error::ServeError;
use crate::registry::ModelVersion;
use rfx_core::Label;
use rfx_telemetry::TraceId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Shared completion slot between the client and the executor.
///
/// All locks here recover from poisoning: a waiter that panics while
/// holding the state lock says nothing about the slot's one-shot
/// invariant (`fulfill` is idempotent by construction), and a worker
/// panic must not cascade into every client blocked on [`Ticket::wait`].
#[derive(Debug)]
pub(crate) struct Slot {
    state: Mutex<Option<Result<Vec<Label>, ServeError>>>,
    done: Condvar,
    /// When the request entered the queue — the request-latency clock.
    pub(crate) enqueued: Instant,
    /// Trace id of the batch this request rode in (0 until the batcher
    /// forms a sampled batch around it) — the ticket-side handle for
    /// correlating a slow request with its full span tree.
    trace: AtomicU64,
    /// Model version that served this request (0 until a worker delivers
    /// labels — versions are 1-based, so 0 is unambiguous).
    version: AtomicU64,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(None),
            done: Condvar::new(),
            enqueued: Instant::now(),
            trace: AtomicU64::new(TraceId::NONE.0),
            version: AtomicU64::new(0),
        })
    }

    /// Stamps the batch's trace id (batcher side, once per request).
    pub(crate) fn set_trace(&self, trace: TraceId) {
        self.trace.store(trace.0, Ordering::Relaxed);
    }

    pub(crate) fn trace(&self) -> TraceId {
        TraceId(self.trace.load(Ordering::Relaxed))
    }

    /// Stamps the version whose model produced this request's labels
    /// (worker side, immediately before the delivering `fulfill`).
    pub(crate) fn set_version(&self, version: ModelVersion) {
        self.version.store(version.get(), Ordering::Release);
    }

    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    pub(crate) fn fulfill(&self, result: Result<Vec<Label>, ServeError>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.is_none() {
            *state = Some(result);
            self.done.notify_all();
        }
    }
}

/// Handle returned by [`crate::RfxServe::submit`]: blocks until the batch
/// containing this request has been executed by some backend.
#[derive(Debug, Clone)]
pub struct Ticket {
    slot: Arc<Slot>,
    rows: usize,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<Slot>, rows: usize) -> Self {
        Ticket { slot, rows }
    }

    /// Number of query rows this ticket covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Blocks until the prediction is available and returns one label per
    /// submitted row.
    pub fn wait(&self) -> Result<Vec<Label>, ServeError> {
        let mut state = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self.slot.done.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`Ticket::wait`] for single-row submissions.
    pub fn wait_one(&self) -> Result<Label, ServeError> {
        let labels = self.wait()?;
        debug_assert_eq!(labels.len(), 1, "wait_one on a micro-batch ticket");
        Ok(labels[0])
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.slot.state.lock().unwrap_or_else(PoisonError::into_inner).is_some()
    }

    /// The [`TraceId`] of the batch that served (or is serving) this
    /// request, once the batcher has formed a *sampled* batch around it.
    /// `None` before batching or when the batch's trace was not sampled
    /// (see `rfx_telemetry::TraceConfig`). Look the id up in the
    /// service's trace snapshot to retrieve the request's full span tree.
    pub fn trace_id(&self) -> Option<TraceId> {
        let trace = self.slot.trace();
        trace.is_some().then_some(trace)
    }

    /// The [`ModelVersion`] whose forest produced this ticket's labels.
    /// `None` until labels are delivered (and for tickets that resolve to
    /// an error — shed or failed requests were never served by any
    /// version). The linearizability contract: the returned version's
    /// model computed *every* row of this ticket; responses are never a
    /// blend of two versions.
    pub fn served_version(&self) -> Option<ModelVersion> {
        ModelVersion::from_raw(self.slot.version())
    }
}
