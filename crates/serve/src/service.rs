//! The service: queue → dynamic batcher → executor pool.
//!
//! One batcher thread forms batches per the flush rules and hands each to
//! the scheduler-chosen backend's worker over an mpsc channel; one worker
//! thread per backend executes batches and fulfills tickets. Shutdown is
//! graceful by construction: closing the queue stops admission, the
//! batcher drains what is queued and exits (dropping the channel
//! senders), and each worker drains its channel before exiting — no
//! admitted request is ever lost.
//!
//! Model lifecycle: the service serves out of a versioned
//! [`ModelRegistry`]. Every formed batch pins an `Arc` of the version it
//! was dispatched with, so [`RfxServe::activate`] (hot-swap) and
//! rollback are single pointer stores — in-flight batches finish on
//! their dispatch version, zero tickets dropped. A [`Router`] optionally
//! shadow-scores a sampled slice of batches on a candidate version
//! (after delivery, never affecting responses) or splits request traffic
//! deterministically across two versions, always whole-batch — a
//! response is never a blend of versions.

use crate::backend::{BackendError, BackendKind};
use crate::error::ServeError;
use crate::fault::FaultState;
use crate::metrics::{BackendProbe, MetricsHub, ModelLifecycleStats, ServeStats};
use crate::model::ServeModel;
use crate::queue::{Pending, RequestQueue};
use crate::registry::{ModelRegistry, ModelVersion, VersionEntry};
use crate::resilience::ResilienceConfig;
use crate::router::{Arm, RouteMode, Router};
use crate::scheduler::{SchedulePolicy, Scheduler};
use crate::ticket::{Slot, Ticket};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rfx_core::pack::PackPlan;
use rfx_core::splitmix64;
use rfx_forest::dataset::QueryView;
use rfx_forest::RandomForest;
use rfx_kernels::VotePolicy;
use rfx_telemetry::{OwnedSpan, Telemetry, TraceId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`RfxServe`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Row budget per batch — the size-flush threshold.
    pub max_batch_size: usize,
    /// Deadline-flush bound: a batch never waits longer than this past
    /// its oldest request's arrival.
    pub max_batch_delay: Duration,
    /// Admission bound in queued rows; beyond it submissions are
    /// rejected with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Backends in the executor pool (one worker thread each). Every
    /// published model version builds its own executor set for these
    /// same slots.
    pub backends: Vec<BackendKind>,
    /// Batch-to-backend assignment policy.
    pub policy: SchedulePolicy,
    /// Vote-reduction policy for every sharded CPU engine the pool
    /// builds (primary and device-refusal fallbacks), on this and every
    /// later published version. [`VotePolicy::Exact`] is the default;
    /// the bit-sliced and early-exit policies are label-identical
    /// opt-ins (see `rfx_kernels::votes`).
    pub vote_policy: VotePolicy,
    /// Rows in the startup probe batch used to seed each backend's
    /// latency estimate (0 disables probing; `Auto` then warms up on the
    /// first live batches instead). Probes call the backends directly
    /// and bypass any configured fault plan — the plan's per-slot
    /// attempt counters only advance on live batches.
    pub seed_probe_rows: usize,
    /// Resilience policies: per-batch timeout + bounded retry, circuit
    /// breakers, deadline shedding. The default disables the timeout and
    /// deadline, so the service behaves exactly as it did without this
    /// layer (breakers exist but never trip without recorded failures).
    pub resilience: ResilienceConfig,
    /// Deterministic fault injection at the backend boundary (testing
    /// only); `None` serves faithfully.
    pub fault_plan: Option<FaultPlanOpt>,
    /// Profile-guided forest packing for the sharded CPU backends
    /// (`cpu-sharded`, `cpu-sharded-q8`): when set, each published
    /// version's layout is reordered hot-first from a deterministic
    /// calibration sweep and bin-packed into byte-budgeted shards (see
    /// `rfx_core::pack`). Packing never changes predictions — only
    /// memory locality — so it composes with any vote policy and with
    /// shadow scoring. `None` (the default) keeps the flat layouts.
    pub pack: Option<PackPlan>,
}

/// Re-exported alias so the config field keeps its historical shape.
pub type FaultPlanOpt = crate::fault::FaultPlan;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch_size: 256,
            max_batch_delay: Duration::from_millis(2),
            queue_capacity: 4096,
            // The exact backends only — quantized backends answer on
            // their own grid and must be opted into per deployment.
            backends: BackendKind::DEFAULT_POOL.to_vec(),
            policy: SchedulePolicy::Auto,
            vote_policy: VotePolicy::Exact,
            seed_probe_rows: 32,
            resilience: ResilienceConfig::default(),
            fault_plan: None,
            pack: None,
        }
    }
}

/// A formed batch in flight to a worker, carrying its trace's root span
/// (backdated to the oldest request's enqueue) across the thread hop,
/// plus the pinned model version that must serve it (and optionally a
/// pinned shadow candidate to score it on after delivery).
struct FormedBatch {
    entries: Vec<Pending>,
    features: Vec<f32>,
    rows: usize,
    span: OwnedSpan,
    formed_at: Instant,
    /// The version every row of this batch is served by — pinned at
    /// formation, immune to concurrent swaps.
    entry: Arc<VersionEntry>,
    /// Candidate version to shadow-score this batch on (never affects
    /// the response).
    shadow: Option<Arc<VersionEntry>>,
}

/// State shared by clients, the batcher, and the workers.
struct Shared {
    registry: ModelRegistry,
    router: Router,
    queue: RequestQueue,
    telemetry: Telemetry,
    metrics: MetricsHub,
    scheduler: Scheduler,
    resilience: ResilienceConfig,
    /// Per-pool-slot fault injectors (slot-keyed so attempt counters
    /// survive hot-swaps); `None` for untargeted slots.
    faults: Vec<Option<FaultState>>,
    /// Shape contract every version satisfies (checked at publish).
    num_features: usize,
    num_classes: u32,
    /// Admission sequence — the A/B hash input.
    admission_seq: AtomicU64,
    /// Formed-batch sequence — the shadow-sampling hash input.
    batch_seq: AtomicU64,
}

/// The dynamic-batching inference service.
pub struct RfxServe {
    shared: Arc<Shared>,
    config: ServeConfig,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RfxServe {
    /// Builds the executor pool and starts serving.
    ///
    /// # Panics
    /// If `config.backends` is empty, lists duplicates, or
    /// `max_batch_size`/`queue_capacity` is zero.
    pub fn start(model: ServeModel, config: ServeConfig) -> RfxServe {
        Self::start_with_telemetry(model, config, Telemetry::new())
    }

    /// [`RfxServe::start`] recording into a caller-provided telemetry
    /// domain — pass [`rfx_telemetry::global()`] (cloned) to merge the
    /// service's metrics and spans with the simulators' process-global
    /// instrumentation in one export, or a fresh domain per service for
    /// isolation (the default).
    pub fn start_with_telemetry(
        model: ServeModel,
        config: ServeConfig,
        telemetry: Telemetry,
    ) -> RfxServe {
        assert!(!config.backends.is_empty(), "executor pool needs at least one backend");
        assert!(config.max_batch_size > 0, "max_batch_size must be positive");
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        for (i, kind) in config.backends.iter().enumerate() {
            assert!(
                !config.backends[..i].contains(kind),
                "duplicate backend {} in pool",
                kind.name()
            );
        }

        let num_features = model.num_features();
        let num_classes = model.num_classes();
        let registry = ModelRegistry::new(
            model,
            &config.backends,
            config.vote_policy,
            config.pack,
            &telemetry,
        );
        let faults: Vec<Option<FaultState>> = config
            .backends
            .iter()
            .map(|&k| match &config.fault_plan {
                Some(plan) if plan.targets(k) => {
                    let counter = telemetry.counter(&format!("serve.fault.{}.injected", k.name()));
                    Some(FaultState::new(plan.clone(), k, counter))
                }
                _ => None,
            })
            .collect();
        let router = Router::new(splitmix64(config.resilience.seed ^ 0x00A0_B517), &telemetry);
        let scheduler = Scheduler::with_breaker_config(
            config.policy,
            &config.backends,
            config.resilience.breaker,
        );
        let metrics = MetricsHub::new(&telemetry, &config.backends);

        if config.seed_probe_rows > 0 {
            probe_backends(&registry.active(), &scheduler, config.seed_probe_rows);
        }

        let shared = Arc::new(Shared {
            registry,
            router,
            queue: RequestQueue::new(config.queue_capacity),
            telemetry,
            metrics,
            scheduler,
            resilience: config.resilience.clone(),
            faults,
            num_features,
            num_classes,
            admission_seq: AtomicU64::new(0),
            batch_seq: AtomicU64::new(0),
        });

        let backend_count = config.backends.len();
        let mut senders = Vec::with_capacity(backend_count);
        let mut workers = Vec::with_capacity(backend_count);
        for (idx, kind) in config.backends.iter().enumerate() {
            let (tx, rx) = mpsc::channel::<FormedBatch>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rfx-serve-{}", kind.name()))
                    .spawn(move || worker_loop(&shared, idx, rx))
                    .expect("spawn worker"),
            );
        }

        let batcher = {
            let shared = Arc::clone(&shared);
            let (max_rows, max_delay) = (config.max_batch_size, config.max_batch_delay);
            std::thread::Builder::new()
                .name("rfx-serve-batcher".into())
                .spawn(move || batcher_loop(&shared, senders, max_rows, max_delay))
                .expect("spawn batcher")
        };

        RfxServe { shared, config, batcher: Some(batcher), workers }
    }

    /// Convenience: [`RfxServe::start`] with [`ServeConfig::default`].
    pub fn start_default(model: ServeModel) -> RfxServe {
        Self::start(model, ServeConfig::default())
    }

    /// Submits one query row (`row.len()` must equal the model's feature
    /// count). Non-blocking; returns a [`Ticket`] to wait on.
    pub fn submit(&self, row: &[f32]) -> Result<Ticket, ServeError> {
        let nf = self.shared.num_features;
        if row.len() != nf {
            return Err(ServeError::BadRequest {
                reason: format!("expected {nf} features, got {}", row.len()),
            });
        }
        self.admit(row)
    }

    /// Submits a micro-batch of rows packed row-major
    /// (`features.len()` must be a positive multiple of the feature
    /// count). The micro-batch is batched and predicted atomically.
    pub fn submit_micro_batch(&self, features: &[f32]) -> Result<Ticket, ServeError> {
        let nf = self.shared.num_features;
        if features.is_empty() || !features.len().is_multiple_of(nf) {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "micro-batch length {} is not a positive multiple of {nf} features",
                    features.len()
                ),
            });
        }
        self.admit(features)
    }

    fn admit(&self, features: &[f32]) -> Result<Ticket, ServeError> {
        let rows = features.len() / self.shared.num_features;
        let slot = Slot::new();
        let seq = self.shared.admission_seq.fetch_add(1, Ordering::Relaxed);
        let arm = self.shared.router.arm_for(seq);
        let pending = Pending { features: features.to_vec(), rows, slot: Arc::clone(&slot), arm };
        match self.shared.queue.try_push(pending) {
            Ok(()) => {
                self.shared.metrics.record_submit(rows);
                Ok(Ticket::new(slot, rows))
            }
            Err(err) => {
                if matches!(err, ServeError::Overloaded { .. }) {
                    self.shared.metrics.record_reject(rows);
                }
                Err(err)
            }
        }
    }

    /// Publishes a prepared model as the next registry version without
    /// activating it. The model must match the serving shape (feature
    /// width, class count).
    pub fn publish(&self, model: ServeModel) -> Result<ModelVersion, ServeError> {
        self.shared.registry.publish(model)
    }

    /// Publishes a bare forest (e.g. an `rfx_forest::online` snapshot),
    /// rebuilding the serving artifacts on the same device configuration
    /// as the current model.
    pub fn publish_forest(&self, forest: RandomForest) -> Result<ModelVersion, ServeError> {
        let model = self
            .shared
            .registry
            .active()
            .model
            .with_same_devices(forest)
            .map_err(|e| ServeError::IncompatibleModel { reason: e.to_string() })?;
        self.publish(model)
    }

    /// Hot-swaps serving to `version` and returns the previously active
    /// version. Atomic epoch-based handoff: new batches pick up the new
    /// version immediately; batches already in flight deliver on the
    /// version they were formed with; no ticket is dropped. Activating
    /// an older version **is** rollback — there is no separate path.
    pub fn activate(&self, version: ModelVersion) -> Result<ModelVersion, ServeError> {
        self.shared.registry.activate(version)
    }

    /// [`RfxServe::publish`] + [`RfxServe::activate`] in one call.
    pub fn publish_and_activate(&self, model: ServeModel) -> Result<ModelVersion, ServeError> {
        let version = self.publish(model)?;
        self.activate(version)?;
        Ok(version)
    }

    /// The version currently serving new batches.
    pub fn active_version(&self) -> ModelVersion {
        self.shared.registry.active_version()
    }

    /// Every published version, in publish order.
    pub fn versions(&self) -> Vec<ModelVersion> {
        self.shared.registry.versions()
    }

    /// Sets the traffic route (shadow scoring / A/B split). Any version
    /// the mode references must already be published.
    pub fn set_route(&self, mode: RouteMode) -> Result<(), ServeError> {
        Router::validate(mode, |v| self.shared.registry.get(v).is_ok())?;
        self.shared.router.set_mode(mode);
        Ok(())
    }

    /// The current traffic route.
    pub fn route(&self) -> RouteMode {
        self.shared.router.mode()
    }

    /// Point-in-time metrics snapshot.
    pub fn stats(&self) -> ServeStats {
        let shared = &self.shared;
        shared.metrics.snapshot(
            shared.queue.depth_rows(),
            |idx| BackendProbe {
                ewma_us: shared.scheduler.ewma_us(idx),
                inflight_rows: shared.scheduler.inflight_rows(idx),
                fallbacks: shared.registry.slot_fallbacks(idx),
                injected_faults: shared.faults[idx].as_ref().map_or(0, FaultState::injected),
                breaker_state: shared.scheduler.breaker_state(idx),
                breaker_trips: shared.scheduler.breaker_trips(idx),
                breaker_transitions: shared.scheduler.breaker_transitions(idx),
            },
            ModelLifecycleStats {
                active_version: shared.registry.active_version().get(),
                epoch: shared.registry.epoch(),
                swaps: shared.registry.swaps(),
                route: shared.router.mode().to_string(),
                shadow: shared.router.shadow_stats(),
                versions: shared.registry.version_stats(),
            },
        )
    }

    /// The telemetry domain this service records into. Clone it to keep
    /// exporting after [`RfxServe::shutdown`] consumes the service.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// The currently active model (owned snapshot — cheap, everything
    /// heavy is behind `Arc`). A hot-swap after this call does not
    /// change the returned value.
    pub fn model(&self) -> ServeModel {
        self.shared.registry.active().model.clone()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Stops admission, drains every queued and in-flight batch, joins
    /// all threads, and returns the final stats. Every ticket issued
    /// before shutdown resolves.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.queue.close();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for RfxServe {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Seeds the scheduler's cost model with one timed probe batch per
/// backend (synthetic in-range features; labels are discarded). Probes
/// call backends directly: no fault injection, no attempt-counter
/// consumption.
fn probe_backends(entry: &VersionEntry, scheduler: &Scheduler, rows: usize) {
    let nf = entry.model.num_features();
    let features: Vec<f32> = (0..rows * nf).map(|i| (i % 17) as f32 / 17.0).collect();
    let queries = QueryView::new(&features, nf).expect("probe batch shape");
    let mut out = vec![0; rows];
    for (idx, backend) in entry.backends.iter().enumerate() {
        let t0 = Instant::now();
        if backend.predict(queries, &mut out).is_ok() {
            scheduler.observe(idx, rows, t0.elapsed());
        }
    }
}

/// Forms batches and dispatches them until the queue closes and drains.
///
/// Each collected batch is partitioned by traffic arm (outside an A/B
/// split every request is on arm A and the batch rides whole), and each
/// arm group is dispatched as its own batch pinned to exactly one model
/// version — the structural guarantee that no response blends versions.
fn batcher_loop(
    shared: &Shared,
    senders: Vec<mpsc::Sender<FormedBatch>>,
    max_rows: usize,
    max_delay: Duration,
) {
    while let Some((entries, backlog_rows)) = shared.queue.collect_batch(max_rows, max_delay) {
        let (arm_a, arm_b): (Vec<Pending>, Vec<Pending>) =
            entries.into_iter().partition(|p| p.arm == Arm::A);
        for (arm, group) in [(Arm::A, arm_a), (Arm::B, arm_b)] {
            if group.is_empty() {
                continue;
            }
            dispatch_group(shared, &senders, arm, group, backlog_rows);
        }
    }
    // Exiting drops the senders; workers drain their channels and stop.
}

/// Opens the trace root for one arm group, resolves its model version,
/// and hands it to the scheduled worker.
///
/// The batch opens the trace's root span `serve.batch` here, backdated
/// to the oldest member request's enqueue, and hands it to the worker
/// inside the [`FormedBatch`] — the explicit cross-thread `SpanContext`
/// edge that the thread-local parent stack cannot provide.
fn dispatch_group(
    shared: &Shared,
    senders: &[mpsc::Sender<FormedBatch>],
    arm: Arm,
    mut entries: Vec<Pending>,
    backlog_rows: usize,
) {
    let nf = shared.num_features;
    let formed_at = Instant::now();
    let batch_seq = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
    // Pin the serving version for this whole group. Arm B resolves
    // through the route's B version; if the split was retired between
    // admission and formation, the group serves on the active version
    // like everything else.
    let entry = match (arm, shared.router.mode()) {
        (Arm::B, RouteMode::AbSplit { arm_b, .. }) => {
            shared.registry.get(arm_b).unwrap_or_else(|_| shared.registry.active())
        }
        _ => shared.registry.active(),
    };
    // Shadow-score only arm-A (active-version) batches: the comparison
    // baseline is what the active model served.
    let shadow = match shared.router.shadow_for(batch_seq) {
        Some(candidate) if candidate != entry.version => shared.registry.get(candidate).ok(),
        _ => None,
    };
    let rows: usize = entries.iter().map(|p| p.rows).sum();
    let oldest = entries.iter().map(|p| p.slot.enqueued).min().unwrap_or(formed_at);
    let mut span = shared.telemetry.start_owned_span_at("serve.batch", oldest);
    span.set_attr("rows", rows.to_string());
    span.set_attr("requests", entries.len().to_string());
    span.set_attr("queue_depth", backlog_rows.to_string());
    span.set_attr("version", entry.version.to_string());
    if arm == Arm::B {
        span.set_attr("arm", arm.name().to_string());
    }
    let ctx = span.context();
    for pending in &entries {
        if ctx.sampled {
            pending.slot.set_trace(ctx.trace);
        }
        let wait = formed_at.saturating_duration_since(pending.slot.enqueued);
        shared.metrics.record_queue_wait(wait.as_micros() as u64);
    }
    // Backfilled first stage: oldest enqueue → batch formation.
    shared.telemetry.tracer().record_span_at(
        "serve.batch.queue_wait",
        ctx,
        oldest,
        formed_at.saturating_duration_since(oldest),
        Vec::new(),
    );
    // Single-request batches reuse the request's own buffer; merged
    // batches concatenate into one contiguous row-major block.
    let features = if entries.len() == 1 {
        std::mem::take(&mut entries[0].features)
    } else {
        let mut buf = Vec::with_capacity(rows * nf);
        for pending in &entries {
            buf.extend_from_slice(&pending.features);
        }
        buf
    };
    shared.metrics.record_batch_formed(rows);
    // Deadline gate at formation: a batch that is already dead gets
    // shed here instead of occupying a backend slot at all.
    if let Some(deadline) = shared.resilience.request_deadline {
        let age = formed_at.saturating_duration_since(oldest);
        if age > deadline {
            shed_batch(shared, &entries, rows, age.as_micros() as u64, deadline);
            span.set_attr("outcome", "shed".to_string());
            span.finish();
            return;
        }
    }
    let idx = shared.scheduler.dispatch(rows);
    shared.metrics.record_dispatch(idx);
    span.set_attr("backend", entry.backends[idx].kind().name().to_string());
    span.set_attr("est_us_per_row", format!("{:.1}", shared.scheduler.ewma_us(idx)));
    let batch = FormedBatch { entries, features, rows, span, formed_at, entry, shadow };
    if senders[idx].send(batch).is_err() {
        // Worker gone (panicked); Pending's drop resolves the
        // tickets with `Dropped`, and the batch span drops with the
        // unsent payload.
        shared.scheduler.release(idx, rows);
    }
}

/// Fulfills every ticket in a dead batch with [`ServeError::Shed`] and
/// records the shedding metrics (used by both the batcher's formation
/// gate and the worker's per-attempt gate).
fn shed_batch(shared: &Shared, entries: &[Pending], rows: usize, age_us: u64, deadline: Duration) {
    let err = ServeError::Shed { age_ms: age_us / 1000, deadline_ms: deadline.as_millis() as u64 };
    for pending in entries {
        pending.slot.fulfill(Err(err.clone()));
    }
    shared.metrics.record_shed(entries.len(), rows);
}

/// Terminal outcome of a batch after the resilience state machine ran.
enum BatchOutcome {
    /// Delivered; `effective` = executing attempt's wall + virtual time.
    Done { effective: Duration },
    /// Shed at the deadline gate with this effective age.
    Shed { age_us: u64 },
    /// Every retry and the last-resort pass failed.
    Failed,
}

/// How one backend attempt on a batch ended.
enum Attempt {
    Delivered {
        /// Effective execution time: wall + injected virtual latency.
        effective: Duration,
    },
    Failed {
        /// Stable reason tag (`timeout` / `corrupt` / `refused` /
        /// `wedged`) for metrics, spans, and errors.
        reason: &'static str,
        /// Virtual time the failure wasted (time a real worker would
        /// have lost that this deterministic harness did not actually
        /// spend blocking). Wall time is *not* included — the shed
        /// gate's age check reads it from the enqueue clock directly.
        penalty_us: u64,
    },
}

/// Executes batches on one backend slot until the batcher hangs up.
///
/// Stage spans tile the batch's root span end to end: `queue_wait`
/// (batcher side) + `dispatch` (channel hand-off) + `traverse` (the
/// kernel) + `deliver` (ticket fan-out) — the decomposition the
/// `trace_profile` critical-path table is computed from. Device phases
/// recorded inside the kernels join the same trace through the ambient
/// scope installed around `predict`.
///
/// Around the traverse stage sits the resilience state machine: each
/// attempt is checked against the per-batch timeout (on **effective**
/// time — wall plus virtual fault penalties) and against label-range
/// corruption; failed attempts are retried on the same backend up to
/// `max_retries` times (with backoff + deterministic jitter), then the
/// batch makes one last pass — with its own retry budget — on the
/// backend of last resort; every attempt outcome feeds the backend's
/// circuit breaker; and before each attempt a deadline gate sheds
/// batches whose oldest request is already effectively past the
/// deadline. Failed attempts leave a `serve.batch.retry` stage span in
/// the trace so recovery paths are visible end to end.
///
/// Every attempt runs on the batch's **pinned** version's backend for
/// this slot (fault injection stays keyed to the slot), and delivered
/// tickets are stamped with that version before fulfillment. When the
/// batch carries a shadow candidate, the candidate re-scores the same
/// queries after delivery — directly, with no fault injection — and
/// only agreement counters and a `serve.batch.shadow` span come out of
/// it.
fn worker_loop(shared: &Shared, idx: usize, rx: mpsc::Receiver<FormedBatch>) {
    let nf = shared.num_features;
    let num_classes = shared.num_classes;
    let res = &shared.resilience;
    let timeout_us = res.timeout_us();
    let mut jitter_rng =
        StdRng::seed_from_u64(res.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    while let Ok(batch) = rx.recv() {
        let FormedBatch { entries, features, rows, span: mut batch_span, formed_at, entry, shadow } =
            batch;
        let ctx = batch_span.context();
        let tracer = shared.telemetry.tracer();
        let queries = QueryView::new(&features, nf).expect("batch shape");
        let mut out = vec![0; rows];
        let t0 = Instant::now();
        tracer.record_span_at(
            "serve.batch.dispatch",
            ctx,
            formed_at,
            t0.saturating_duration_since(formed_at),
            Vec::new(),
        );

        let oldest = entries.iter().map(|p| p.slot.enqueued).min().unwrap_or(formed_at);
        // Virtual time lost to faults so far (timeouts we did not really
        // wait out, wedges we did not really hang on).
        let mut penalty_us: u64 = 0;
        let mut attempts: u32 = 0;
        // Retries burned on the *current* backend; resets when the batch
        // falls back to the last resort.
        let mut retries_here: u32 = 0;
        let mut exec_idx = idx;
        let mut fell_back = false;
        let mut last_reason = "none";

        let outcome = loop {
            // Deadline gate on effective age: wall age from the enqueue
            // clock plus everything the faults virtually cost us.
            if let Some(deadline) = res.request_deadline {
                let age_us = oldest.elapsed().as_micros() as u64 + penalty_us;
                if age_us > deadline.as_micros() as u64 {
                    break BatchOutcome::Shed { age_us };
                }
            }
            let backend = &entry.backends[exec_idx];
            let a_start = Instant::now();
            let result = {
                let mut traverse =
                    shared.telemetry.start_span_child_of("serve.batch.traverse", ctx);
                if traverse.is_recorded() {
                    traverse.set_attr("backend", backend.kind().name().to_string());
                    traverse.set_attr("rows", rows.to_string());
                    if attempts > 0 {
                        traverse.set_attr("attempt", (attempts + 1).to_string());
                    }
                    for (key, value) in backend.tile_attrs(rows) {
                        traverse.set_attr(key, value);
                    }
                }
                let _ambient = shared.telemetry.in_context(traverse.context());
                match &shared.faults[exec_idx] {
                    Some(fault) => fault.execute(backend.as_ref(), queries, &mut out),
                    None => backend.predict(queries, &mut out),
                }
            };
            let a_wall = a_start.elapsed();
            attempts += 1;

            let verdict = match &result {
                Ok(exec) => {
                    let effective = a_wall + Duration::from_micros(exec.virtual_us);
                    let effective_us = effective.as_micros() as u64;
                    if timeout_us > 0 && effective_us > timeout_us {
                        // A real worker abandons the attempt at the
                        // timeout; charge exactly that much waiting.
                        shared.metrics.recorder(exec_idx).record_timeout();
                        Attempt::Failed { reason: "timeout", penalty_us: timeout_us }
                    } else if out.iter().any(|&label| label >= num_classes) {
                        // Corrupt-then-detect: the injected sentinel is
                        // out of the model's class range by construction.
                        Attempt::Failed { reason: "corrupt", penalty_us: exec.virtual_us }
                    } else {
                        Attempt::Delivered { effective }
                    }
                }
                Err(BackendError::Refused(_)) => {
                    Attempt::Failed { reason: "refused", penalty_us: 0 }
                }
                Err(BackendError::Wedged) => {
                    // The attempt would never return; a real worker
                    // loses the full timeout (or a deadline-sized chunk
                    // when no timeout is configured).
                    shared.metrics.recorder(exec_idx).record_timeout();
                    Attempt::Failed { reason: "wedged", penalty_us: res.wedge_penalty_us() }
                }
            };

            match verdict {
                Attempt::Delivered { effective } => {
                    shared.scheduler.record_outcome(exec_idx, true);
                    break BatchOutcome::Done { effective };
                }
                Attempt::Failed { reason, penalty_us: wasted } => {
                    penalty_us += wasted;
                    last_reason = reason;
                    shared.scheduler.record_outcome(exec_idx, false);
                    tracer.record_span_at(
                        "serve.batch.retry",
                        ctx,
                        a_start,
                        a_wall,
                        vec![
                            ("backend".into(), entry.backends[exec_idx].kind().name().into()),
                            ("attempt".into(), attempts.to_string()),
                            ("reason".into(), reason.into()),
                            ("penalty_us".into(), wasted.to_string()),
                        ],
                    );
                    let last_resort = shared.scheduler.last_resort();
                    if retries_here < res.max_retries {
                        retries_here += 1;
                    } else if !fell_back && exec_idx != last_resort {
                        fell_back = true;
                        exec_idx = last_resort;
                        retries_here = 0;
                    } else {
                        break BatchOutcome::Failed;
                    }
                    shared.metrics.record_retry();
                    let backoff = res.backoff_for(retries_here.max(1), jitter_rng.next_u64());
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        };

        let trace = if ctx.sampled { ctx.trace } else { TraceId::NONE };
        let delivered = matches!(outcome, BatchOutcome::Done { .. });
        // In-flight rows were booked on the dispatched backend; release
        // them there no matter where the batch actually ran.
        shared.scheduler.release(idx, rows);
        let deliver_start = Instant::now();
        match outcome {
            BatchOutcome::Done { effective } => {
                shared.scheduler.observe(exec_idx, rows, effective);
                let effective_us = effective.as_micros() as u64;
                shared.metrics.recorder(exec_idx).record_batch(rows, effective_us, trace);
                entry.recorder.record_batch(rows, effective_us, trace);
                if attempts > 1 {
                    shared.metrics.record_recovered();
                    batch_span.set_attr("attempts", attempts.to_string());
                }
                let mut offset = 0;
                for pending in &entries {
                    let labels = out[offset..offset + pending.rows].to_vec();
                    offset += pending.rows;
                    let latency = pending.slot.enqueued.elapsed();
                    shared.metrics.record_request_done(
                        pending.rows,
                        latency.as_micros() as u64,
                        trace,
                    );
                    // Stamp the serving version before the result lands:
                    // a ready ticket always knows who served it.
                    pending.slot.set_version(entry.version);
                    pending.slot.fulfill(Ok(labels));
                }
            }
            BatchOutcome::Shed { age_us } => {
                batch_span.set_attr("outcome", "shed".to_string());
                shed_batch(
                    shared,
                    &entries,
                    rows,
                    age_us,
                    res.request_deadline.unwrap_or_default(),
                );
            }
            BatchOutcome::Failed => {
                batch_span.set_attr("outcome", "failed".to_string());
                let err = ServeError::BackendFailed { attempts, reason: last_reason.to_string() };
                for pending in &entries {
                    pending.slot.fulfill(Err(err.clone()));
                }
                shared.metrics.record_failed(entries.len(), rows);
            }
        }
        tracer.record_span_at(
            "serve.batch.deliver",
            ctx,
            deliver_start,
            deliver_start.elapsed(),
            Vec::new(),
        );
        // Shadow lane: after the response is out the door, re-score the
        // same queries on the candidate and record argmax agreement.
        // Direct backend call — no fault injection, no breaker feedback,
        // no effect on any ticket.
        if delivered {
            if let Some(candidate) = &shadow {
                let s_start = Instant::now();
                let s_idx = shared.scheduler.last_resort();
                let mut shadow_out = vec![0; rows];
                if candidate.backends[s_idx].predict(queries, &mut shadow_out).is_ok() {
                    let agree = out.iter().zip(shadow_out.iter()).filter(|(a, b)| a == b).count();
                    shared.router.record_shadow(rows, agree);
                    candidate.recorder.record_shadow(rows, agree);
                    tracer.record_span_at(
                        "serve.batch.shadow",
                        ctx,
                        s_start,
                        s_start.elapsed(),
                        vec![
                            ("candidate".into(), candidate.version.to_string()),
                            ("rows".into(), rows.to_string()),
                            ("agree_rows".into(), agree.to_string()),
                        ],
                    );
                }
            }
        }
        shared.metrics.record_batch_duration(batch_span.elapsed_us(), trace);
        batch_span.finish();
    }
}
