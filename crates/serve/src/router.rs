//! Traffic routing across model versions: shadow scoring and A/B splits.
//!
//! The router decides, per request and per batch, which published model
//! version is involved beyond the active one:
//!
//! * **Shadow mode** duplicates a sampled slice of batches to a
//!   *candidate* version **after** the served labels are delivered. The
//!   candidate's output is compared row-for-row against the served
//!   output (argmax agreement) and recorded — it never touches a
//!   response. This is how a freshly trained version earns trust before
//!   activation.
//! * **A/B split** assigns each *request* an arm at admission time via a
//!   deterministic hash of the admission sequence number, and the batcher
//!   partitions every formed batch by arm — so each dispatched batch is
//!   served by exactly one version, preserving the linearizability
//!   contract (a response is never a blend of versions).
//!
//! All sampling decisions are pure functions of
//! `splitmix64(salt ^ sequence)` — replaying the same request order
//! replays the same routing, which keeps chaos runs bit-identical.

use crate::error::ServeError;
use crate::registry::ModelVersion;
use rfx_core::splitmix64;
use rfx_telemetry::{Counter, Telemetry};
use serde::Serialize;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Domain separator so the per-request A/B stream and the per-batch
/// shadow stream never correlate even under the same salt.
const SHADOW_STREAM: u64 = 0x5AD0_15D0_0D5E_ED00;

/// Which traffic arm a request belongs to. Outside an A/B split every
/// request is on [`Arm::A`] (the active version).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arm {
    /// Control: served by the active version.
    A,
    /// Treatment: served by the split's `arm_b` version.
    B,
}

impl Arm {
    /// Stable name used in span attributes (`"a"` / `"b"`).
    pub fn name(self) -> &'static str {
        match self {
            Arm::A => "a",
            Arm::B => "b",
        }
    }
}

/// How traffic is routed across model versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// All traffic to the active version (the default).
    Single,
    /// All traffic to the active version; additionally, a sampled slice
    /// of batches is re-scored on `candidate` after delivery and the
    /// argmax agreement recorded. Served responses are never affected.
    Shadow {
        /// Version to score in the shadow lane.
        candidate: ModelVersion,
        /// Fraction of batches to shadow, in thousandths (0..=1000).
        sample_permille: u32,
    },
    /// Deterministic request-level split: ~`b_permille`/1000 of requests
    /// are served by `arm_b`, the rest by the active version.
    AbSplit {
        /// Version serving arm B.
        arm_b: ModelVersion,
        /// Arm-B share in thousandths (0..=1000).
        b_permille: u32,
    },
}

impl fmt::Display for RouteMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteMode::Single => f.write_str("single"),
            RouteMode::Shadow { candidate, sample_permille } => {
                write!(f, "shadow:{candidate}@{sample_permille}permille")
            }
            RouteMode::AbSplit { arm_b, b_permille } => {
                write!(f, "ab:{arm_b}@{b_permille}permille")
            }
        }
    }
}

/// Aggregate shadow-scoring stats (also available per candidate version
/// in [`crate::VersionStats`]).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ShadowStats {
    /// Batches re-scored in the shadow lane.
    pub batches: u64,
    /// Rows re-scored.
    pub rows: u64,
    /// Rows where the candidate agreed with the served label.
    pub agree_rows: u64,
    /// `agree_rows / rows` (1.0 when nothing was shadowed yet).
    pub agreement: f64,
}

/// Decides arms and shadow samples; owns the mode and the shadow
/// counters.
#[derive(Debug)]
pub(crate) struct Router {
    mode: Mutex<RouteMode>,
    salt: u64,
    shadow_batches: Arc<Counter>,
    shadow_rows: Arc<Counter>,
    shadow_agree_rows: Arc<Counter>,
}

impl Router {
    pub(crate) fn new(salt: u64, telemetry: &Telemetry) -> Self {
        Router {
            mode: Mutex::new(RouteMode::Single),
            salt,
            shadow_batches: telemetry.counter("serve.shadow.batches"),
            shadow_rows: telemetry.counter("serve.shadow.rows"),
            shadow_agree_rows: telemetry.counter("serve.shadow.agree_rows"),
        }
    }

    pub(crate) fn mode(&self) -> RouteMode {
        *self.mode.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn set_mode(&self, mode: RouteMode) {
        *self.mode.lock().unwrap_or_else(PoisonError::into_inner) = mode;
    }

    /// The arm for the request admitted with sequence number
    /// `admission_seq` — a pure hash, so a replayed request order gets a
    /// replayed split.
    pub(crate) fn arm_for(&self, admission_seq: u64) -> Arm {
        match self.mode() {
            RouteMode::AbSplit { b_permille, .. }
                if splitmix64(self.salt ^ admission_seq) % 1000 < b_permille as u64 =>
            {
                Arm::B
            }
            _ => Arm::A,
        }
    }

    /// The candidate version to shadow-score batch `batch_seq` on, if the
    /// mode and the deterministic sample say so.
    pub(crate) fn shadow_for(&self, batch_seq: u64) -> Option<ModelVersion> {
        match self.mode() {
            RouteMode::Shadow { candidate, sample_permille }
                if splitmix64(self.salt ^ SHADOW_STREAM ^ batch_seq) % 1000
                    < sample_permille as u64 =>
            {
                Some(candidate)
            }
            _ => None,
        }
    }

    /// Records one shadow-scored batch into the aggregate counters.
    pub(crate) fn record_shadow(&self, rows: usize, agree_rows: usize) {
        self.shadow_batches.inc();
        self.shadow_rows.add(rows as u64);
        self.shadow_agree_rows.add(agree_rows as u64);
    }

    pub(crate) fn shadow_stats(&self) -> ShadowStats {
        let rows = self.shadow_rows.get();
        let agree_rows = self.shadow_agree_rows.get();
        ShadowStats {
            batches: self.shadow_batches.get(),
            rows,
            agree_rows,
            agreement: if rows > 0 { agree_rows as f64 / rows as f64 } else { 1.0 },
        }
    }

    /// Validates a mode against the set of published versions (the
    /// service resolves `exists` from its registry).
    pub(crate) fn validate(
        mode: RouteMode,
        exists: impl Fn(ModelVersion) -> bool,
    ) -> Result<(), ServeError> {
        let referenced = match mode {
            RouteMode::Single => None,
            RouteMode::Shadow { candidate, .. } => Some(candidate),
            RouteMode::AbSplit { arm_b, .. } => Some(arm_b),
        };
        match referenced {
            Some(v) if !exists(v) => Err(ServeError::UnknownVersion { version: v.get() }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        Router::new(0xAB, &Telemetry::new())
    }

    fn v(n: u64) -> ModelVersion {
        ModelVersion::from_raw(n).unwrap()
    }

    #[test]
    fn single_mode_routes_everything_to_arm_a() {
        let r = router();
        assert!((0..500).all(|seq| r.arm_for(seq) == Arm::A));
        assert!((0..500).all(|seq| r.shadow_for(seq).is_none()));
    }

    #[test]
    fn ab_split_is_deterministic_and_calibrated() {
        let r = router();
        r.set_mode(RouteMode::AbSplit { arm_b: v(2), b_permille: 250 });
        let arms: Vec<Arm> = (0..4000).map(|seq| r.arm_for(seq)).collect();
        let again: Vec<Arm> = (0..4000).map(|seq| r.arm_for(seq)).collect();
        assert_eq!(arms, again, "the split must be a pure function of the sequence");
        let b_count = arms.iter().filter(|&&a| a == Arm::B).count();
        assert!((800..1200).contains(&b_count), "~25% of 4000 expected, got {b_count}");
        // A different salt partitions differently.
        let other = Router::new(0xCD, &Telemetry::new());
        other.set_mode(RouteMode::AbSplit { arm_b: v(2), b_permille: 250 });
        let other_arms: Vec<Arm> = (0..4000).map(|seq| other.arm_for(seq)).collect();
        assert_ne!(arms, other_arms);
    }

    #[test]
    fn shadow_sampling_is_deterministic_and_calibrated() {
        let r = router();
        r.set_mode(RouteMode::Shadow { candidate: v(3), sample_permille: 500 });
        let picks: Vec<Option<ModelVersion>> = (0..2000).map(|seq| r.shadow_for(seq)).collect();
        assert_eq!(picks, (0..2000).map(|seq| r.shadow_for(seq)).collect::<Vec<_>>());
        let sampled = picks.iter().filter(|p| p.is_some()).count();
        assert!((850..1150).contains(&sampled), "~50% of 2000 expected, got {sampled}");
        assert!(picks.iter().flatten().all(|&c| c == v(3)));
        // Shadow mode never reassigns arms.
        assert!((0..200).all(|seq| r.arm_for(seq) == Arm::A));
    }

    #[test]
    fn full_permille_shadows_every_batch() {
        let r = router();
        r.set_mode(RouteMode::Shadow { candidate: v(2), sample_permille: 1000 });
        assert!((0..100).all(|seq| r.shadow_for(seq) == Some(v(2))));
        r.set_mode(RouteMode::Shadow { candidate: v(2), sample_permille: 0 });
        assert!((0..100).all(|seq| r.shadow_for(seq).is_none()));
    }

    #[test]
    fn shadow_stats_aggregate() {
        let r = router();
        r.record_shadow(8, 8);
        r.record_shadow(8, 6);
        let s = r.shadow_stats();
        assert_eq!((s.batches, s.rows, s.agree_rows), (2, 16, 14));
        assert!((s.agreement - 14.0 / 16.0).abs() < 1e-12);
        // Empty shadow lane reports full agreement, not NaN.
        assert_eq!(router().shadow_stats().agreement, 1.0);
    }

    #[test]
    fn validate_rejects_unpublished_versions() {
        let exists = |ver: ModelVersion| ver.get() <= 2;
        assert!(Router::validate(RouteMode::Single, exists).is_ok());
        assert!(Router::validate(
            RouteMode::Shadow { candidate: v(2), sample_permille: 100 },
            exists
        )
        .is_ok());
        assert!(matches!(
            Router::validate(RouteMode::Shadow { candidate: v(5), sample_permille: 100 }, exists),
            Err(ServeError::UnknownVersion { version: 5 })
        ));
        assert!(matches!(
            Router::validate(RouteMode::AbSplit { arm_b: v(9), b_permille: 500 }, exists),
            Err(ServeError::UnknownVersion { version: 9 })
        ));
    }
}
