//! Resilience policy knobs: per-batch timeout, bounded retry with
//! exponential backoff + jitter, deadline-aware load shedding, and the
//! per-backend circuit breaker configuration.
//!
//! All time comparisons in the retry/shed machinery use **effective
//! time** = measured wall time + accumulated *virtual* latency injected
//! by a [`crate::FaultPlan`]. Real deployments see virtual_us = 0, so
//! effective time is just wall time; chaos tests pick virtual penalties
//! that dominate wall noise by orders of magnitude, which is what makes
//! their timeout/shed decisions reproducible without sleeping.

use crate::breaker::BreakerConfig;
use std::time::Duration;

/// Resilience policy for one service instance
/// (see [`crate::ServeConfig::resilience`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Per-attempt batch timeout. An attempt whose effective duration
    /// (wall + virtual) exceeds this counts as failed and is retried.
    /// `Duration::ZERO` disables timeout checking (the default — the
    /// service behaves exactly as before this layer existed).
    pub timeout: Duration,
    /// Retries after the first attempt on the *same* backend before
    /// falling back to the backend of last resort.
    pub max_retries: u32,
    /// Base backoff before retry `k` (doubled each retry, capped by
    /// [`ResilienceConfig::backoff_cap`]). `ZERO` (default) means no
    /// sleeping — chaos tests keep it zero for speed and determinism.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Jitter added to each backoff, in thousandths of the backoff
    /// (0..=1000), drawn from a deterministic per-worker RNG.
    pub backoff_jitter_permille: u32,
    /// End-to-end deadline measured from a request's enqueue. A batch
    /// whose oldest entry is past the deadline (effectively, including
    /// virtual penalties) is **shed** — completed with
    /// [`crate::ServeError::Shed`] instead of burning backend time on an
    /// answer nobody is waiting for. `None` (default) disables shedding.
    pub request_deadline: Option<Duration>,
    /// Per-backend circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Seed for backoff jitter (per-worker RNG = `seed ^ worker index`).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            timeout: Duration::ZERO,
            max_retries: 2,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::from_millis(100),
            backoff_jitter_permille: 200,
            request_deadline: None,
            breaker: BreakerConfig::default(),
            seed: 0,
        }
    }
}

/// Virtual penalty charged for a wedged attempt when no timeout is
/// configured: without a timeout there is no natural "time wasted
/// waiting" figure, so charge something deadline-sized (60 s) to make
/// wedges count against any configured deadline.
pub(crate) const WEDGE_FALLBACK_PENALTY_US: u64 = 60_000_000;

impl ResilienceConfig {
    /// Per-attempt timeout in microseconds; 0 = disabled.
    pub(crate) fn timeout_us(&self) -> u64 {
        self.timeout.as_micros() as u64
    }

    /// Virtual microseconds a wedged attempt wastes: the full timeout if
    /// one is configured (that is how long a real worker would have
    /// blocked), else [`WEDGE_FALLBACK_PENALTY_US`].
    pub(crate) fn wedge_penalty_us(&self) -> u64 {
        match self.timeout_us() {
            0 => WEDGE_FALLBACK_PENALTY_US,
            t => t,
        }
    }

    /// The backoff before retry number `attempt` (1-based), including
    /// deterministic jitter in `[0, backoff * jitter_permille / 1000]`.
    pub(crate) fn backoff_for(&self, attempt: u32, jitter_draw: u64) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let base_us = self.backoff_base.as_micros() as u64;
        let cap_us = self.backoff_cap.as_micros().max(1) as u64;
        let exp = attempt.saturating_sub(1).min(20);
        let backoff_us = base_us.saturating_mul(1u64 << exp).min(cap_us);
        let jitter_span = backoff_us * self.backoff_jitter_permille as u64 / 1000;
        let jitter_us = if jitter_span == 0 { 0 } else { jitter_draw % (jitter_span + 1) };
        Duration::from_micros(backoff_us + jitter_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_disable_timeout_and_deadline() {
        let cfg = ResilienceConfig::default();
        assert_eq!(cfg.timeout_us(), 0);
        assert!(cfg.request_deadline.is_none());
        assert_eq!(cfg.backoff_for(1, 12345), Duration::ZERO, "zero base = no sleep");
        assert_eq!(cfg.wedge_penalty_us(), WEDGE_FALLBACK_PENALTY_US);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = ResilienceConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            backoff_jitter_permille: 0,
            ..ResilienceConfig::default()
        };
        assert_eq!(cfg.backoff_for(1, 0), Duration::from_millis(10));
        assert_eq!(cfg.backoff_for(2, 0), Duration::from_millis(20));
        assert_eq!(cfg.backoff_for(3, 0), Duration::from_millis(35), "capped");
        assert_eq!(cfg.backoff_for(60, 0), Duration::from_millis(35), "huge attempt stays capped");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let cfg = ResilienceConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            backoff_jitter_permille: 500,
            ..ResilienceConfig::default()
        };
        for draw in [0u64, 1, 999, u64::MAX] {
            let b = cfg.backoff_for(1, draw);
            assert!(b >= Duration::from_millis(10) && b <= Duration::from_millis(15), "{b:?}");
            assert_eq!(b, cfg.backoff_for(1, draw), "same draw, same backoff");
        }
    }

    #[test]
    fn wedge_penalty_tracks_timeout() {
        let cfg =
            ResilienceConfig { timeout: Duration::from_millis(80), ..ResilienceConfig::default() };
        assert_eq!(cfg.wedge_penalty_us(), 80_000);
    }
}
