//! `rfx-serve` — online random-forest inference with dynamic batching
//! and multi-backend scheduling.
//!
//! Offline benchmarks (the rest of this workspace) answer "how fast is a
//! kernel on a fixed batch"; serving answers "what latency/throughput do
//! concurrent clients see". The pieces, in request order:
//!
//! 1. **Admission** — [`RfxServe::submit`] / [`RfxServe::submit_micro_batch`]
//!    copy the query into a bounded queue or reject it with a typed
//!    [`ServeError::Overloaded`] (load shedding, never unbounded memory).
//! 2. **Dynamic batcher** — one thread coalesces queued requests into
//!    batches, flushing when `max_batch_size` rows are waiting *or*
//!    `max_batch_delay` has passed since the oldest request arrived,
//!    whichever comes first. Large offline batches amortize per-launch
//!    cost; the deadline bounds the latency a lone request pays for that
//!    amortization.
//! 3. **Scheduling** — a cost model picks the backend with the cheapest
//!    estimated completion (per-query latency EWMA × outstanding rows),
//!    learned online from measured batch latencies ([`SchedulePolicy`]).
//! 4. **Executor pool** — one worker thread per backend
//!    ([`BackendKind`]): the row-parallel CPU engine, the tree-sharded
//!    cache-blocked CPU engine, the simulated-GPU hybrid kernel, and the
//!    simulated-FPGA independent kernel — all behind the unified
//!    `rfx_kernels::engine::Predictor` API. All backends agree with the
//!    serial CPU reference bit-for-bit, so scheduling is invisible to
//!    clients.
//! 5. **Observability** — every recorded number lives in the service's
//!    [`rfx_telemetry::Telemetry`] domain ([`RfxServe::telemetry`]):
//!    `serve.*` counters/gauges/histograms plus a `serve.batch` →
//!    `serve.batch.traverse` span tree per executed batch.
//!    [`RfxServe::stats`] computes the serializable [`ServeStats`]
//!    surface (queue depth, batch occupancy, p50/p95/p99, throughput,
//!    per-backend shares) from those histograms — no sample sorting.
//!    The `telemetry` cargo feature additionally enables per-stage
//!    instrumentation inside the kernels and device simulators.
//! 6. **Resilience** — per-batch timeouts with bounded retry, backoff,
//!    and deterministic jitter; per-backend circuit breakers
//!    (closed/open/half-open) that route around tripped backends with
//!    `cpu-sharded` as the always-available backend of last resort; and
//!    deadline-aware load shedding with a typed [`ServeError::Shed`]
//!    outcome ([`ResilienceConfig`]). A seeded [`FaultPlan`] injects
//!    deterministic delay/fail/corrupt/wedge faults at the backend
//!    boundary — with **virtual** delay accounting, so chaos tests
//!    replay bit-identically without sleeping.
//!
//! 7. **Model lifecycle** — the service serves out of a versioned model
//!    registry. [`RfxServe::publish`] registers a new [`ServeModel`] (or
//!    [`RfxServe::publish_forest`] a bare forest, e.g. an
//!    `rfx_forest::online` trainer snapshot) as the next
//!    [`ModelVersion`]; [`RfxServe::activate`] hot-swaps serving to it
//!    with an atomic epoch-based `Arc` handoff — in-flight batches
//!    finish on the version they were dispatched with, zero tickets are
//!    dropped, and activating an older version *is* rollback.
//!    [`RfxServe::set_route`] layers traffic control on top: **shadow
//!    mode** re-scores a deterministic sample of batches on a candidate
//!    version after delivery (argmax agreement recorded, responses
//!    never affected), and **A/B split** partitions requests across two
//!    versions by a deterministic admission-sequence hash, whole
//!    batches only — a response is never a blend of versions. Every
//!    ticket reports which version served it
//!    ([`Ticket::served_version`]), and per-version telemetry lands
//!    under `serve.model.<v>.*`.
//!
//! Shutdown ([`RfxServe::shutdown`]) drains: admission closes, queued
//! work still executes, every issued [`Ticket`] resolves.
//!
//! [`loadgen`] provides the deterministic closed-loop load generator the
//! tests and `serve_bench` drive the service with.

mod backend;
mod breaker;
mod error;
mod fault;
pub mod loadgen;
mod metrics;
mod model;
mod queue;
mod registry;
mod resilience;
mod router;
mod scheduler;
mod service;
mod ticket;

pub use backend::BackendKind;
pub use breaker::{BreakerConfig, BreakerState};
pub use error::ServeError;
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultSchedule};
pub use loadgen::{run_closed_loop, LoadGenConfig, LoadReport};
pub use metrics::{BackendStats, LatencySummary, ModelLifecycleStats, ServeStats};
pub use model::ServeModel;
pub use registry::{ModelVersion, VersionStats};
pub use resilience::ResilienceConfig;
pub use router::{Arm, RouteMode, ShadowStats};
pub use scheduler::SchedulePolicy;
pub use service::{RfxServe, ServeConfig};
pub use ticket::Ticket;
// The engine's vote-reduction policy and the packing plan, re-exported
// so deployments can set `ServeConfig::vote_policy` / `ServeConfig::pack`
// without depending on rfx-kernels or rfx-core directly.
pub use rfx_core::pack::PackPlan;
pub use rfx_kernels::VotePolicy;
