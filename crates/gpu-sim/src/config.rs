//! Device configuration, with the Titan Xp preset the paper evaluates on.

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Full GPU cost-model configuration. Two presets are provided; every
/// field is public so studies can perturb the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Shared memory per SM in bytes (48 KB on the Titan Xp — the paper's
    /// root-subtree size limit).
    pub shared_mem_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Per-SM L1 geometry.
    pub l1: CacheConfig,
    /// The device-shared L2 as seen by one SM. The full 3 MB is visible
    /// to every SM (it is address-interleaved, not partitioned), so each
    /// simulated SM carries a full-size L2 model; cross-SM sharing of
    /// tree data is the only effect this approximation misses.
    pub l2_slice: CacheConfig,
    /// DRAM bandwidth in GB/s (547.5 on the Titan Xp, quoted in §4.5).
    pub dram_bw_gbps: f64,
    /// Load-to-use latency of an L1 hit, cycles.
    pub lat_l1: u32,
    /// Load-to-use latency of an L2 hit, cycles.
    pub lat_l2: u32,
    /// Load-to-use latency of a DRAM access, cycles.
    pub lat_dram: u32,
    /// Load-to-use latency of a shared-memory access, cycles.
    pub lat_shared: u32,
    /// Dependent-ALU latency, cycles.
    pub lat_alu: u32,
    /// Issue cost of each transaction that misses L1 (LSU + miss-queue
    /// occupancy).
    pub tx_issue_cycles: u32,
    /// Issue cost of each transaction served by L1 (fast replay).
    pub hit_issue_cycles: u32,
}

impl GpuConfig {
    /// The paper's GPU: Pascal Titan Xp — 30 SMs × 128 cores, 48 KB shared
    /// memory per SM, 3 MB L2, 547.5 GB/s GDDR5X, ~1.58 GHz boost clock.
    /// Latencies follow the Pascal microbenchmarks of Mei & Chu (TPDS 2017, the paper's reference 12).
    pub fn titan_xp() -> Self {
        Self {
            num_sms: 30,
            warp_size: 32,
            clock_ghz: 1.58,
            shared_mem_per_sm: 48 * 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            l1: CacheConfig { capacity_bytes: 24 * 1024, line_bytes: 128, ways: 8 },
            l2_slice: CacheConfig { capacity_bytes: 3 * 1024 * 1024, line_bytes: 128, ways: 16 },
            dram_bw_gbps: 547.5,
            lat_l1: 30,
            lat_l2: 190,
            lat_dram: 400,
            lat_shared: 25,
            lat_alu: 6,
            tx_issue_cycles: 4,
            hit_issue_cycles: 1,
        }
    }

    /// A one-SM **slice** of the Titan Xp: identical per-SM resources with
    /// 1/30th of the DRAM bandwidth. Simulating a slice with 1/30th of the
    /// query set reproduces the full device's per-SM occupancy and
    /// cache/bandwidth pressure at 1/30th of the simulation cost — the
    /// standard scaling methodology for architecture simulators. Device
    /// throughput = 30 × slice throughput.
    pub fn titan_xp_slice() -> Self {
        let mut cfg = Self::titan_xp();
        cfg.num_sms = 1;
        cfg.dram_bw_gbps /= 30.0;
        cfg
    }

    /// A deliberately tiny device for fast, readable unit tests: 2 SMs,
    /// small caches, low latencies.
    pub fn tiny_test() -> Self {
        Self {
            num_sms: 2,
            warp_size: 32,
            clock_ghz: 1.0,
            shared_mem_per_sm: 4 * 1024,
            max_warps_per_sm: 8,
            max_blocks_per_sm: 4,
            l1: CacheConfig { capacity_bytes: 1024, line_bytes: 128, ways: 2 },
            l2_slice: CacheConfig { capacity_bytes: 4096, line_bytes: 128, ways: 4 },
            dram_bw_gbps: 10.0,
            lat_l1: 10,
            lat_l2: 50,
            lat_dram: 100,
            lat_shared: 8,
            lat_alu: 2,
            tx_issue_cycles: 2,
            hit_issue_cycles: 1,
        }
    }

    /// DRAM bandwidth in bytes per core-clock cycle (whole device).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_gbps * 1e9 / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_xp_matches_paper_quotes() {
        let c = GpuConfig::titan_xp();
        assert_eq!(c.num_sms, 30);
        assert_eq!(c.shared_mem_per_sm, 48 * 1024);
        assert!((c.dram_bw_gbps - 547.5).abs() < 1e-9);
        assert_eq!(c.warp_size, 32);
    }

    #[test]
    fn l2_is_3mb_device_shared() {
        let c = GpuConfig::titan_xp();
        assert_eq!(c.l2_slice.capacity_bytes, 3 * 1024 * 1024);
    }

    #[test]
    fn bandwidth_per_cycle() {
        let c = GpuConfig::titan_xp();
        let bpc = c.dram_bytes_per_cycle();
        assert!((bpc - 547.5 / 1.58).abs() < 0.01, "{bpc}");
    }

    #[test]
    fn config_roundtrips_serde() {
        let c = GpuConfig::titan_xp();
        let s = serde_json::to_string(&c).unwrap();
        let back: GpuConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
