//! # rfx-gpu-sim
//!
//! A warp-level **SIMT GPU simulator** standing in for the Titan Xp the
//! paper measures on. It is a functional-plus-timing interpreter: kernels
//! (in `rfx-kernels`) compute their real results against host memory while
//! driving this crate's cost model with the *addresses* they touch, and the
//! simulator produces device time plus the hardware counters the paper
//! reports (global load transactions, branch efficiency — Fig. 8).
//!
//! ## What is modeled
//!
//! * **Coalescing** — a warp's lane addresses are grouped into 128-byte
//!   transactions ([`coalesce`]), the paper's §2.3 bottleneck mechanism.
//! * **Memory hierarchy** — per-SM L1 and a per-SM L2 slice
//!   (set-associative, LRU, 128 B lines, [`cache`]), DRAM latency, and a
//!   device-wide DRAM bandwidth roofline.
//! * **Shared memory** — per-block allocation checked against the 48 KB/SM
//!   budget; occupancy (resident blocks per SM) derives from it, exactly
//!   the constraint that caps the paper's root-subtree depth.
//! * **Divergence** — warps record uniform vs divergent branches
//!   (`branch efficiency`), and divergent code costs both sides' issue
//!   slots because kernels drive each side with its active mask.
//! * **Latency vs throughput** — tree traversal is a dependent-load chain,
//!   so each warp accumulates full load-to-use latencies; concurrent
//!   resident warps overlap those latencies up to the occupancy limit, and
//!   kernel time is the max of the compute-issue, overlapped-latency, and
//!   DRAM-bandwidth bounds.
//!
//! ## What is *not* modeled
//!
//! Instruction fetch, shared-memory bank conflicts, TLBs, and ECC. These
//! affect all code variants roughly equally and do not change the paper's
//! comparisons.
//!
//! ```
//! use rfx_gpu_sim::{AddressSpace, BlockKernel, BlockCtx, GpuConfig, GpuSim, Grid, LaneAccess};
//!
//! // A kernel in which each thread streams one f32 from global memory.
//! struct Copy { data: rfx_gpu_sim::DeviceBuffer }
//! impl BlockKernel for Copy {
//!     fn shared_mem_bytes(&self) -> usize { 0 }
//!     fn run(&self, ctx: &mut BlockCtx) {
//!         for w in 0..ctx.num_warps() {
//!             let mut lanes = [LaneAccess::NONE; 32];
//!             for l in 0..32 {
//!                 let tid = ctx.thread_id(w, l);
//!                 lanes[l] = LaneAccess::read(self.data.addr(tid as u64), 4);
//!             }
//!             ctx.global_read(w, &lanes);
//!         }
//!     }
//! }
//!
//! let mut mem = AddressSpace::new();
//! let data = mem.alloc("data", 4, 4096);
//! let sim = GpuSim::new(GpuConfig::titan_xp());
//! let stats = sim.launch(Grid { num_blocks: 16, threads_per_block: 256 }, &Copy { data });
//! // 256 threads/block * 16 blocks, 32 consecutive 4-byte reads coalesce
//! // into one 128-byte transaction per warp.
//! assert_eq!(stats.global_load_transactions, 128);
//! assert!(stats.device_seconds > 0.0);
//! ```

pub mod addr;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod engine;
pub mod stats;

pub use addr::{AddressSpace, DeviceBuffer};
pub use cache::{Cache, CacheConfig};
pub use config::GpuConfig;
pub use engine::{BlockCtx, BlockKernel, GpuSim, Grid, LaneAccess};
pub use stats::GpuStats;
