//! The launch engine: blocks, warps, timing model.
//!
//! A kernel is written **warp-synchronously**: [`BlockKernel::run`]
//! receives a [`BlockCtx`] and drives per-warp operations (global reads,
//! shared accesses, ALU work, branches, barriers). The context keeps one
//! latency clock and one issue counter per warp:
//!
//! * the **latency clock** accumulates full load-to-use latencies — tree
//!   traversal is a dependent-load chain, so a warp really does wait out
//!   every level's memory access;
//! * the **issue counter** counts instruction/transaction slots, which
//!   bound throughput when many warps are resident.
//!
//! At the end of a launch each SM's time is
//! `max(Σ issue, Σ block-critical latency / resident blocks, max latency)`
//! over the blocks it ran, i.e. latency is hidden by multithreading up to
//! the occupancy limit — the same first-order model GPU vendors teach for
//! latency-bound kernels. The device time is the slowest SM, floored by
//! the DRAM-bandwidth roofline.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::stats::{GpuStats, TimeBound};
use rayon::prelude::*;

/// Kernel launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of thread blocks.
    pub num_blocks: usize,
    /// Threads per block (rounded up to whole warps internally).
    pub threads_per_block: usize,
}

/// One lane's contribution to a warp memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAccess {
    /// Device address.
    pub addr: u64,
    /// Access width in bytes; 0 marks an inactive lane.
    pub bytes: u32,
}

impl LaneAccess {
    /// An inactive lane.
    pub const NONE: LaneAccess = LaneAccess { addr: 0, bytes: 0 };

    /// An active read/write of `bytes` at `addr`.
    #[inline]
    pub fn read(addr: u64, bytes: u32) -> Self {
        Self { addr, bytes }
    }

    /// Whether the lane participates.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.bytes > 0
    }
}

/// Errors a launch can fail with before any block runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The kernel's static shared-memory request exceeds the per-SM budget.
    SharedMemExceeded {
        /// Bytes the kernel asked for.
        requested: usize,
        /// Bytes one SM offers.
        available: usize,
    },
    /// Grid with zero blocks or zero threads.
    EmptyGrid,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SharedMemExceeded { requested, available } => {
                write!(f, "kernel requests {requested} B of shared memory, SM offers {available} B")
            }
            LaunchError::EmptyGrid => write!(f, "empty grid"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A device kernel. Implementations compute their functional results
/// directly against host data and report costs through the [`BlockCtx`].
pub trait BlockKernel: Sync {
    /// Static shared-memory allocation per block, bytes (determines
    /// occupancy, validated against the SM budget).
    fn shared_mem_bytes(&self) -> usize;

    /// Executes one block.
    fn run(&self, ctx: &mut BlockCtx);
}

/// Per-block execution context handed to kernels.
pub struct BlockCtx<'a> {
    cfg: &'a GpuConfig,
    block_id: usize,
    threads_per_block: usize,
    num_warps: usize,
    l1: &'a mut Cache,
    l2: &'a mut Cache,
    stats: GpuStats,
    warp_latency: Vec<u64>,
    warp_issue: Vec<u64>,
    segs: Vec<u64>,
}

impl<'a> BlockCtx<'a> {
    /// Index of this block within the grid.
    #[inline]
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Threads in this block.
    #[inline]
    pub fn threads_per_block(&self) -> usize {
        self.threads_per_block
    }

    /// Warps in this block.
    #[inline]
    pub fn num_warps(&self) -> usize {
        self.num_warps
    }

    /// Global thread id of `(warp, lane)` in this block.
    #[inline]
    pub fn thread_id(&self, warp: usize, lane: usize) -> usize {
        self.block_id * self.threads_per_block + warp * self.cfg.warp_size as usize + lane
    }

    /// Whether `(warp, lane)` is within the block's thread count (the last
    /// warp may be partial).
    #[inline]
    pub fn lane_in_bounds(&self, warp: usize, lane: usize) -> bool {
        warp * self.cfg.warp_size as usize + lane < self.threads_per_block
    }

    /// Issues one warp global-**load** instruction with the given per-lane
    /// accesses. Lanes with `bytes == 0` are inactive. Returns the number
    /// of 128-byte transactions the instruction coalesced into.
    pub fn global_read(&mut self, warp: usize, lanes: &[LaneAccess; 32]) -> u32 {
        self.global_access(warp, lanes, false)
    }

    /// Issues one warp global-**store** instruction. Stores are modeled
    /// fire-and-forget (no dependent latency) but consume issue slots,
    /// transactions, and DRAM bandwidth.
    pub fn global_write(&mut self, warp: usize, lanes: &[LaneAccess; 32]) -> u32 {
        self.global_access(warp, lanes, true)
    }

    /// Issues one warp global-load whose result is **not** on a dependent
    /// chain (cooperative staging, prefetch): the loads pipeline behind
    /// each other, so the warp pays issue cost but not load-to-use
    /// latency. Counters are identical to [`BlockCtx::global_read`].
    pub fn global_read_bulk(&mut self, warp: usize, lanes: &[LaneAccess; 32]) -> u32 {
        let before = self.warp_latency[warp];
        let issue_before = self.warp_issue[warp];
        let n = self.global_access(warp, lanes, false);
        // Replace the dependent-latency charge with the issue cost alone.
        self.warp_latency[warp] = before + (self.warp_issue[warp] - issue_before);
        n
    }

    fn global_access(&mut self, warp: usize, lanes: &[LaneAccess; 32], store: bool) -> u32 {
        crate::coalesce::segments(
            lanes.iter().filter(|l| l.is_active()).map(|l| (l.addr, l.bytes)),
            &mut self.segs,
        );
        let n = self.segs.len() as u32;
        if n == 0 {
            return 0;
        }
        let mut worst = 0u64;
        let mut issue = 0u64;
        for i in 0..self.segs.len() {
            let seg = self.segs[i];
            let lat = if self.l1.access(seg) {
                self.stats.l1_hits += 1;
                issue += self.cfg.hit_issue_cycles as u64;
                self.cfg.lat_l1
            } else {
                self.stats.l1_misses += 1;
                issue += self.cfg.tx_issue_cycles as u64;
                if self.l2.access(seg) {
                    self.stats.l2_hits += 1;
                    self.cfg.lat_l2
                } else {
                    self.stats.l2_misses += 1;
                    self.cfg.lat_dram
                }
            };
            worst = worst.max(lat as u64);
        }
        if store {
            self.stats.global_store_transactions += n as u64;
        } else {
            self.stats.global_load_transactions += n as u64;
        }
        self.warp_issue[warp] += issue.max(1);
        if store {
            self.warp_latency[warp] += issue.max(1);
        } else {
            // Dependent-chain latency: the slowest segment plus the issue
            // serialization of the remaining replays.
            self.warp_latency[warp] += worst
                + issue
                    .saturating_sub(self.cfg.tx_issue_cycles as u64)
                    .min((n as u64 - 1) * self.cfg.tx_issue_cycles as u64);
        }
        n
    }

    /// Issues one warp shared-memory access (load or store; bank conflicts
    /// are not modeled).
    pub fn shared_access(&mut self, warp: usize) {
        self.stats.shared_accesses += 1;
        self.warp_issue[warp] += 1;
        self.warp_latency[warp] += self.cfg.lat_shared as u64;
    }

    /// Issues `n` dependent ALU operations on a warp.
    pub fn alu(&mut self, warp: usize, n: u32) {
        self.stats.alu_ops += n as u64;
        self.warp_issue[warp] += n as u64;
        self.warp_latency[warp] += n as u64 * self.cfg.lat_alu as u64;
    }

    /// Records one warp branch. `active_mask` marks live lanes,
    /// `taken_mask` the lanes taking the branch; the branch is *uniform*
    /// when the live lanes all agree. Divergent sides must additionally be
    /// driven by the kernel with their respective masks (which is how
    /// serialization costs appear).
    pub fn branch(&mut self, warp: usize, active_mask: u32, taken_mask: u32) {
        self.stats.branch_total += 1;
        let taken = taken_mask & active_mask;
        if taken == 0 || taken == active_mask {
            self.stats.branch_uniform += 1;
        }
        self.warp_issue[warp] += 1;
        self.warp_latency[warp] += 1;
    }

    /// Block-wide barrier (`__syncthreads`): aligns every warp's latency
    /// clock to the slowest warp.
    pub fn barrier(&mut self) {
        let max = self.warp_latency.iter().copied().max().unwrap_or(0);
        for t in &mut self.warp_latency {
            *t = max;
        }
    }
}

/// The simulator.
#[derive(Debug, Clone)]
pub struct GpuSim {
    config: GpuConfig,
}

impl GpuSim {
    /// A simulator for the given device model.
    pub fn new(config: GpuConfig) -> Self {
        Self { config }
    }

    /// The device model.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Launches `kernel` over `grid`; panics on launch misconfiguration.
    /// Prefer [`GpuSim::try_launch`] in library code.
    pub fn launch<K: BlockKernel>(&self, grid: Grid, kernel: &K) -> GpuStats {
        self.try_launch(grid, kernel).expect("kernel launch failed")
    }

    /// Launches `kernel` over `grid`.
    pub fn try_launch<K: BlockKernel>(
        &self,
        grid: Grid,
        kernel: &K,
    ) -> Result<GpuStats, LaunchError> {
        let cfg = &self.config;
        if grid.num_blocks == 0 || grid.threads_per_block == 0 {
            return Err(LaunchError::EmptyGrid);
        }
        let shared = kernel.shared_mem_bytes();
        if shared > cfg.shared_mem_per_sm as usize {
            return Err(LaunchError::SharedMemExceeded {
                requested: shared,
                available: cfg.shared_mem_per_sm as usize,
            });
        }
        // Measures host-side simulation wall time of the whole launch;
        // the modeled device time lands in the counters below. Recorded
        // into the ambient domain so a serving batch's traverse span owns
        // the device phase instead of it becoming an orphan root.
        #[cfg(feature = "telemetry")]
        let _launch_tel = rfx_telemetry::current();
        #[cfg(feature = "telemetry")]
        let mut launch_span =
            rfx_telemetry::span!(_launch_tel, "gpusim.launch", blocks = grid.num_blocks);
        let warps_per_block = grid.threads_per_block.div_ceil(cfg.warp_size as usize);
        // Occupancy: blocks resident on one SM at a time.
        let by_shared = (cfg.shared_mem_per_sm as usize)
            .checked_div(shared)
            .map_or(cfg.max_blocks_per_sm as usize, |b| b.max(1));
        let by_warps = (cfg.max_warps_per_sm as usize / warps_per_block).max(1);
        let resident_blocks = by_shared.min(by_warps).min(cfg.max_blocks_per_sm as usize);

        // Blocks round-robin over SMs; each SM simulated sequentially so
        // its caches carry state across its blocks, SMs in parallel.
        let num_sms = cfg.num_sms as usize;
        let per_sm: Vec<(GpuStats, u64)> = (0..num_sms.min(grid.num_blocks))
            .into_par_iter()
            .map(|sm| {
                let mut l1 = Cache::new(cfg.l1);
                let mut l2 = Cache::new(cfg.l2_slice);
                let mut stats = GpuStats::default();
                let mut issue_sum = 0u64;
                let mut latency_sum = 0u64;
                let mut latency_max = 0u64;
                let mut blocks_on_sm = 0usize;
                let mut b = sm;
                while b < grid.num_blocks {
                    // Fresh L1 per block: on real hardware the resident
                    // blocks share one small L1 concurrently, so a block
                    // cannot count on lines surviving from its
                    // predecessors. The L2 slice persists across blocks.
                    l1.reset();
                    let mut ctx = BlockCtx {
                        cfg,
                        block_id: b,
                        threads_per_block: grid.threads_per_block,
                        num_warps: warps_per_block,
                        l1: &mut l1,
                        l2: &mut l2,
                        stats: GpuStats::default(),
                        warp_latency: vec![0; warps_per_block],
                        warp_issue: vec![0; warps_per_block],
                        segs: Vec::new(),
                    };
                    kernel.run(&mut ctx);
                    ctx.stats.blocks_launched = 1;
                    ctx.stats.warps_launched = warps_per_block as u64;
                    stats.merge_counters(&ctx.stats);
                    issue_sum += ctx.warp_issue.iter().sum::<u64>();
                    // A block's critical path is its slowest warp: barriers
                    // have already folded any intra-block serialization into
                    // the warp clocks, and barrier-free warps of one block
                    // overlap each other fully. Inter-block overlap is
                    // bounded by how many blocks are resident at once.
                    let block_critical = ctx.warp_latency.iter().copied().max().unwrap_or(0);
                    latency_sum += block_critical;
                    latency_max = latency_max.max(block_critical);
                    blocks_on_sm += 1;
                    b += num_sms;
                }
                let overlap = resident_blocks.min(blocks_on_sm).max(1) as u64;
                let sm_cycles = issue_sum.max(latency_sum / overlap).max(latency_max);
                // Unified perf-schema cycle split: issue slots are useful
                // work; whatever the SM clock covers beyond them is
                // memory latency the resident warps could not hide.
                stats.issue_cycles = issue_sum;
                stats.mem_stall_cycles = sm_cycles.saturating_sub(issue_sum);
                (stats, sm_cycles)
            })
            .collect();

        let mut total = GpuStats::default();
        let mut device_cycles = 0u64;
        for (s, c) in &per_sm {
            total.merge_counters(s);
            device_cycles = device_cycles.max(*c);
        }
        let compute_seconds = device_cycles as f64 / (cfg.clock_ghz * 1e9);
        let dram_seconds = total.dram_bytes() as f64 / (cfg.dram_bw_gbps * 1e9);
        // Classify the binding constraint before flooring by bandwidth.
        let latency_bound_hit = {
            // Recompute which max() won on the slowest SM is overkill;
            // report DRAM when it dominates, else latency vs issue by
            // comparing aggregate sums.
            dram_seconds > compute_seconds
        };
        total.device_cycles = device_cycles;
        total.device_seconds = compute_seconds.max(dram_seconds);
        total.bound = if latency_bound_hit { TimeBound::DramBandwidth } else { TimeBound::Latency };
        #[cfg(feature = "telemetry")]
        {
            // Resident-warp fraction of the SM's warp slots — the
            // occupancy number `nvcc --ptxas-options=-v` style tuning
            // reasons about.
            let occupancy =
                ((resident_blocks * warps_per_block) as f64 / cfg.max_warps_per_sm as f64).min(1.0);
            // Extra wall time the DRAM roofline added beyond compute,
            // charged as memory stall at the core clock.
            let dram_stall_cycles =
                ((total.device_seconds - compute_seconds).max(0.0) * cfg.clock_ghz * 1e9) as u64;
            let perf = total.perf_counters(occupancy, dram_stall_cycles);
            for (key, value) in perf.span_attrs() {
                launch_span.set_attr(key, value);
            }
            emit_launch_telemetry(&total, &perf);
        }
        Ok(total)
    }
}

/// Records one launch's hardware counters into the ambient telemetry
/// domain — the process-global domain unless the caller installed a
/// scoped one. Memory-hierarchy and stall counters go through the
/// unified `gpusim.perf.*` schema ([`rfx_telemetry::perf`], shared with
/// fpga-sim and the CPU engine's memory tracer); counters with no
/// cross-path meaning (branch divergence, shared-memory traffic, launch
/// geometry — the remaining `nvprof` metrics of the paper's Fig. 8)
/// stay in the `gpusim.*` namespace. Compiled only under the
/// `telemetry` feature so the default simulator build carries no
/// instrumentation.
#[cfg(feature = "telemetry")]
fn emit_launch_telemetry(stats: &GpuStats, perf: &rfx_telemetry::PerfCounters) {
    let tel = rfx_telemetry::current();
    perf.export(&tel, "gpusim");
    tel.counter("gpusim.launches").inc();
    tel.counter("gpusim.global.load_transactions").add(stats.global_load_transactions);
    tel.counter("gpusim.global.store_transactions").add(stats.global_store_transactions);
    tel.counter("gpusim.shared.accesses").add(stats.shared_accesses);
    tel.counter("gpusim.branch.total").add(stats.branch_total);
    tel.counter("gpusim.branch.uniform").add(stats.branch_uniform);
    tel.counter("gpusim.warps.launched").add(stats.warps_launched);
    tel.counter("gpusim.device.cycles").add(stats.device_cycles);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddressSpace;

    /// Each thread reads one consecutive f32.
    struct StreamKernel {
        data: crate::addr::DeviceBuffer,
    }

    impl BlockKernel for StreamKernel {
        fn shared_mem_bytes(&self) -> usize {
            0
        }
        fn run(&self, ctx: &mut BlockCtx) {
            for w in 0..ctx.num_warps() {
                let mut lanes = [LaneAccess::NONE; 32];
                for (l, lane) in lanes.iter_mut().enumerate() {
                    let tid = ctx.thread_id(w, l) as u64;
                    if tid < self.data.len() {
                        *lane = LaneAccess::read(self.data.addr(tid), 4);
                    }
                }
                ctx.global_read(w, &lanes);
            }
        }
    }

    /// Each thread reads one f32 strided by a full line.
    struct ScatterKernel {
        data: crate::addr::DeviceBuffer,
    }

    impl BlockKernel for ScatterKernel {
        fn shared_mem_bytes(&self) -> usize {
            0
        }
        fn run(&self, ctx: &mut BlockCtx) {
            for w in 0..ctx.num_warps() {
                let mut lanes = [LaneAccess::NONE; 32];
                for (l, lane) in lanes.iter_mut().enumerate() {
                    let tid = ctx.thread_id(w, l) as u64;
                    *lane = LaneAccess::read(self.data.addr(tid * 32), 4);
                }
                ctx.global_read(w, &lanes);
            }
        }
    }

    fn sim() -> GpuSim {
        GpuSim::new(GpuConfig::tiny_test())
    }

    #[test]
    fn coalesced_stream_counts_one_tx_per_warp() {
        let mut mem = AddressSpace::new();
        let data = mem.alloc("d", 4, 1024);
        let stats =
            sim().launch(Grid { num_blocks: 4, threads_per_block: 256 }, &StreamKernel { data });
        // 4 blocks * 8 warps = 32 warps, 1 tx each.
        assert_eq!(stats.global_load_transactions, 32);
        assert_eq!(stats.warps_launched, 32);
        assert_eq!(stats.blocks_launched, 4);
    }

    #[test]
    fn scattered_reads_cost_32x_transactions() {
        let mut mem = AddressSpace::new();
        let data = mem.alloc("d", 4, 64 * 1024);
        let grid = Grid { num_blocks: 2, threads_per_block: 64 };
        let st = sim().launch(grid, &ScatterKernel { data });
        // 2 blocks * 2 warps * 32 tx.
        assert_eq!(st.global_load_transactions, 128);
        let coalesced = sim().launch(grid, &StreamKernel { data });
        assert!(st.device_seconds > coalesced.device_seconds, "scatter must be slower");
    }

    #[test]
    fn repeated_access_hits_l1_and_is_faster() {
        struct Repeat {
            data: crate::addr::DeviceBuffer,
        }
        impl BlockKernel for Repeat {
            fn shared_mem_bytes(&self) -> usize {
                0
            }
            fn run(&self, ctx: &mut BlockCtx) {
                for _ in 0..10 {
                    let lanes = [LaneAccess::read(self.data.addr(0), 4); 32];
                    ctx.global_read(0, &lanes);
                }
            }
        }
        let mut mem = AddressSpace::new();
        let data = mem.alloc("d", 4, 32);
        let st = sim().launch(Grid { num_blocks: 1, threads_per_block: 32 }, &Repeat { data });
        assert_eq!(st.global_load_transactions, 10);
        assert_eq!(st.l1_misses, 1);
        assert_eq!(st.l1_hits, 9);
    }

    #[test]
    fn branch_divergence_is_counted() {
        struct Divergent;
        impl BlockKernel for Divergent {
            fn shared_mem_bytes(&self) -> usize {
                0
            }
            fn run(&self, ctx: &mut BlockCtx) {
                ctx.branch(0, u32::MAX, 0x0000_FFFF); // divergent
                ctx.branch(0, u32::MAX, u32::MAX); // uniform taken
                ctx.branch(0, u32::MAX, 0); // uniform not-taken
                ctx.branch(0, 0x3, 0x1); // divergent among 2 live lanes
            }
        }
        let st = sim().launch(Grid { num_blocks: 1, threads_per_block: 32 }, &Divergent);
        assert_eq!(st.branch_total, 4);
        assert_eq!(st.branch_uniform, 2);
        assert!((st.branch_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_over_budget_is_rejected() {
        struct Hog;
        impl BlockKernel for Hog {
            fn shared_mem_bytes(&self) -> usize {
                1 << 20
            }
            fn run(&self, _: &mut BlockCtx) {}
        }
        let err =
            sim().try_launch(Grid { num_blocks: 1, threads_per_block: 32 }, &Hog).unwrap_err();
        assert!(matches!(err, LaunchError::SharedMemExceeded { .. }));
    }

    #[test]
    fn empty_grid_is_rejected() {
        struct Nop;
        impl BlockKernel for Nop {
            fn shared_mem_bytes(&self) -> usize {
                0
            }
            fn run(&self, _: &mut BlockCtx) {}
        }
        assert_eq!(
            sim().try_launch(Grid { num_blocks: 0, threads_per_block: 32 }, &Nop).unwrap_err(),
            LaunchError::EmptyGrid
        );
        assert_eq!(
            sim().try_launch(Grid { num_blocks: 1, threads_per_block: 0 }, &Nop).unwrap_err(),
            LaunchError::EmptyGrid
        );
    }

    #[test]
    fn shared_access_and_alu_accumulate() {
        struct Mixed;
        impl BlockKernel for Mixed {
            fn shared_mem_bytes(&self) -> usize {
                128
            }
            fn run(&self, ctx: &mut BlockCtx) {
                ctx.shared_access(0);
                ctx.shared_access(0);
                ctx.alu(0, 5);
                ctx.barrier();
            }
        }
        let st = sim().launch(Grid { num_blocks: 1, threads_per_block: 64 }, &Mixed);
        assert_eq!(st.shared_accesses, 2);
        assert_eq!(st.alu_ops, 5);
        assert!(st.device_cycles > 0);
    }

    #[test]
    fn occupancy_hides_latency() {
        // Many resident warps should yield shorter time than the naive sum
        // of all warp latencies.
        let mut mem = AddressSpace::new();
        let data = mem.alloc("d", 4, 1 << 20);
        let st =
            sim().launch(Grid { num_blocks: 16, threads_per_block: 256 }, &ScatterKernel { data });
        // Naive serial latency: every tx at least l1-hit latency.
        let serial_floor = st.global_load_transactions * 10;
        assert!(
            st.device_cycles < serial_floor,
            "{} cycles should be well under the serial floor {serial_floor}",
            st.device_cycles
        );
    }

    #[test]
    fn more_blocks_take_longer() {
        let mut mem = AddressSpace::new();
        let data = mem.alloc("d", 4, 1 << 22);
        let small =
            sim().launch(Grid { num_blocks: 8, threads_per_block: 128 }, &ScatterKernel { data });
        let large =
            sim().launch(Grid { num_blocks: 64, threads_per_block: 128 }, &ScatterKernel { data });
        assert!(large.device_seconds > small.device_seconds);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut mem = AddressSpace::new();
        let data = mem.alloc("d", 4, 1 << 20);
        let grid = Grid { num_blocks: 12, threads_per_block: 128 };
        let a = sim().launch(grid, &ScatterKernel { data });
        let b = sim().launch(grid, &ScatterKernel { data });
        assert_eq!(a, b);
    }
}
