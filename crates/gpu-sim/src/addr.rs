//! Virtual device address space.
//!
//! The simulator never stores array contents — kernels read real data from
//! host slices — but the cost model needs *addresses* to coalesce and to
//! cache. [`AddressSpace`] hands out non-overlapping, 128-byte-aligned
//! regions so distinct arrays never share cache lines spuriously.

use serde::{Deserialize, Serialize};

/// Device allocation granularity and cache-line size (bytes).
pub const LINE_BYTES: u64 = 128;

/// One registered device array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceBuffer {
    base: u64,
    elem_bytes: u32,
    len: u64,
}

impl DeviceBuffer {
    /// Device address of element `index`.
    ///
    /// # Panics
    /// Panics in debug builds if `index` is out of range.
    #[inline]
    pub fn addr(&self, index: u64) -> u64 {
        debug_assert!(index < self.len, "index {index} out of {} elements", self.len);
        self.base + index * self.elem_bytes as u64
    }

    /// Element size in bytes.
    #[inline]
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base device address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total byte size.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.len * self.elem_bytes as u64
    }
}

/// Bump allocator for device arrays.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
    allocations: Vec<(String, DeviceBuffer)>,
}

impl AddressSpace {
    /// An empty address space starting at a non-zero base (so address 0 is
    /// never valid — it would mask bugs).
    pub fn new() -> Self {
        Self { next: LINE_BYTES, allocations: Vec::new() }
    }

    /// Registers an array of `len` elements of `elem_bytes` each, aligned
    /// to the cache-line size.
    pub fn alloc(&mut self, label: &str, elem_bytes: u32, len: u64) -> DeviceBuffer {
        assert!(elem_bytes > 0, "zero-sized elements");
        let buf = DeviceBuffer { base: self.next, elem_bytes, len };
        let bytes = (len * elem_bytes as u64).div_ceil(LINE_BYTES) * LINE_BYTES;
        self.next += bytes.max(LINE_BYTES);
        self.allocations.push((label.to_string(), buf));
        buf
    }

    /// Total bytes allocated so far (device-memory footprint of the
    /// registered arrays).
    pub fn allocated_bytes(&self) -> u64 {
        self.next - LINE_BYTES
    }

    /// Registered allocations, in order, with their labels.
    pub fn allocations(&self) -> &[(String, DeviceBuffer)] {
        &self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new();
        let b1 = a.alloc("x", 4, 100);
        let b2 = a.alloc("y", 2, 3);
        let b3 = a.alloc("z", 12, 1000);
        for b in [b1, b2, b3] {
            assert_eq!(b.base() % LINE_BYTES, 0);
        }
        assert!(b1.base() + b1.size_bytes() <= b2.base());
        assert!(b2.base() + b2.size_bytes() <= b3.base());
        assert!(b1.base() >= LINE_BYTES, "address zero is never handed out");
    }

    #[test]
    fn element_addressing() {
        let mut a = AddressSpace::new();
        let b = a.alloc("x", 12, 10);
        assert_eq!(b.addr(0), b.base());
        assert_eq!(b.addr(3), b.base() + 36);
        assert_eq!(b.elem_bytes(), 12);
        assert_eq!(b.len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of")]
    #[cfg(debug_assertions)]
    fn out_of_range_index_panics_in_debug() {
        let mut a = AddressSpace::new();
        let b = a.alloc("x", 4, 2);
        let _ = b.addr(2);
    }

    #[test]
    fn footprint_accounting() {
        let mut a = AddressSpace::new();
        a.alloc("x", 4, 32); // exactly one line
        a.alloc("y", 4, 1); // rounds up to one line
        assert_eq!(a.allocated_bytes(), 256);
        assert_eq!(a.allocations().len(), 2);
        assert_eq!(a.allocations()[0].0, "x");
    }
}
