//! Memory-transaction coalescing (§2.3 of the paper).
//!
//! Global memory moves in aligned 128-byte transactions. The accesses of a
//! warp's active lanes are grouped by the distinct 128-byte segments they
//! touch: 32 consecutive `f32` reads coalesce into a single transaction,
//! while 32 scattered reads cost up to 32.

use crate::addr::LINE_BYTES;

/// Collects the distinct 128-byte segment base addresses touched by the
/// given `(addr, bytes)` accesses into `out` (cleared first, returned
/// sorted). An access may straddle a segment boundary and contribute two
/// (or more) segments.
pub fn segments(accesses: impl Iterator<Item = (u64, u32)>, out: &mut Vec<u64>) {
    out.clear();
    for (addr, bytes) in accesses {
        debug_assert!(bytes > 0, "zero-byte access");
        let first = addr / LINE_BYTES;
        let last = (addr + bytes as u64 - 1) / LINE_BYTES;
        for seg in first..=last {
            out.push(seg * LINE_BYTES);
        }
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(acc: &[(u64, u32)]) -> Vec<u64> {
        let mut out = Vec::new();
        segments(acc.iter().copied(), &mut out);
        out
    }

    #[test]
    fn consecutive_f32_reads_coalesce_to_one() {
        let acc: Vec<(u64, u32)> = (0..32).map(|i| (i * 4, 4)).collect();
        assert_eq!(segs(&acc), vec![0]);
    }

    #[test]
    fn strided_reads_explode() {
        let acc: Vec<(u64, u32)> = (0..32).map(|i| (i * 256, 4)).collect();
        assert_eq!(segs(&acc).len(), 32);
    }

    #[test]
    fn straddling_access_touches_two_segments() {
        assert_eq!(segs(&[(126, 4)]), vec![0, 128]);
        assert_eq!(segs(&[(120, 8)]), vec![0]);
        // A 12-byte FIL node at offset 120 spills into the next segment.
        assert_eq!(segs(&[(120, 12)]), vec![0, 128]);
    }

    #[test]
    fn duplicates_collapse() {
        let acc: Vec<(u64, u32)> = (0..32).map(|_| (512, 4)).collect();
        assert_eq!(segs(&acc), vec![512]);
    }

    #[test]
    fn two_groups() {
        let mut acc: Vec<(u64, u32)> = (0..16).map(|i| (i * 4, 4)).collect();
        acc.extend((0..16).map(|i| (4096 + i * 4, 4)));
        assert_eq!(segs(&acc), vec![0, 4096]);
    }

    #[test]
    fn empty_input() {
        assert!(segs(&[]).is_empty());
    }
}
