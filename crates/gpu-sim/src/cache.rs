//! Set-associative LRU caches (per-SM L1 and L2 slice).

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Line size in bytes (128 on Nvidia parts).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        (self.capacity_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// A set-associative cache with true-LRU replacement. Tracks hit/miss
/// counts; contents are tags only (the simulator never stores data).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: line tags ordered most- to least-recently used.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// An empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes > 0 && config.ways > 0);
        let sets = vec![Vec::with_capacity(config.ways as usize); config.num_sets() as usize];
        Self { config, sets, hits: 0, misses: 0 }
    }

    /// Probes the line containing `addr`, updating LRU order and inserting
    /// on miss. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.ways as usize {
                set.pop();
            }
            set.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Drops all contents and counters (used between independent kernel
    /// launches).
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
// `n * 128` spells "line index × line size" in the access patterns below.
#[allow(clippy::erasing_op, clippy::identity_op)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 128-byte lines.
        Cache::new(CacheConfig { capacity_bytes: 512, line_bytes: 128, ways: 2 })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(4), "same line");
        assert!(c.access(127));
        assert!(!c.access(128), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (2 sets -> even lines to set 0).
        assert!(!c.access(0 * 128));
        assert!(!c.access(2 * 128));
        assert!(!c.access(4 * 128)); // evicts line 0
        assert!(!c.access(0 * 128), "line 0 was evicted");
        assert!(c.access(4 * 128), "line 4 still resident");
    }

    #[test]
    fn lru_order_updated_on_hit() {
        let mut c = tiny();
        c.access(0 * 128);
        c.access(2 * 128);
        c.access(0 * 128); // 0 becomes MRU
        c.access(4 * 128); // evicts 2, not 0
        assert!(c.access(0 * 128));
        assert!(!c.access(2 * 128));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0 * 128); // set 0
        c.access(1 * 128); // set 1
        c.access(3 * 128); // set 1
        c.access(5 * 128); // set 1: evicts line 1
        assert!(c.access(0 * 128), "set 0 untouched by set-1 traffic");
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(!c.access(0), "cold after reset");
    }

    #[test]
    fn geometry() {
        let cfg = CacheConfig { capacity_bytes: 24 * 1024, line_bytes: 128, ways: 8 };
        assert_eq!(cfg.num_sets(), 24);
    }

    #[test]
    fn degenerate_geometry_clamps_to_one_set() {
        // Capacity smaller than one way's worth of lines: the integer
        // division would yield 0 sets; the config must clamp to 1 so the
        // cache still functions (as a single fully-associative set).
        let cfg = CacheConfig { capacity_bytes: 128, line_bytes: 128, ways: 4 };
        assert_eq!(cfg.num_sets(), 1);
        let mut c = Cache::new(cfg);
        // All lines land in the lone set; 4 ways hold 4 distinct lines.
        for line in 0..4u64 {
            assert!(!c.access(line * 128));
        }
        for line in 0..4u64 {
            assert!(c.access(line * 128), "line {line} resident in the single set");
        }
        // A 5th line evicts the LRU (line 0 after the re-touch order 0..4).
        assert!(!c.access(4 * 128));
        assert!(!c.access(0 * 128), "line 0 was the LRU victim");
    }

    #[test]
    fn conflict_misses_despite_spare_capacity() {
        // 2 sets x 2 ways: four even lines all conflict on set 0 while
        // set 1 sits empty — a capacity-4 cache still thrashes.
        let mut c = tiny();
        for round in 0..2 {
            for line in [0u64, 2, 4, 6] {
                assert!(!c.access(line * 128), "round {round}: line {line} conflict-missed");
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 8);
    }

    #[test]
    fn eviction_order_is_true_lru_across_many_evictions() {
        let mut c = tiny();
        // Fill set 0 (ways = 2), then stream conflicting lines while
        // re-touching line 2 after every insertion: true LRU must evict
        // the streamed line each time and keep the hot line resident
        // across arbitrarily many evictions.
        c.access(0 * 128);
        c.access(2 * 128);
        for line in [4u64, 6, 8, 10] {
            assert!(!c.access(line * 128), "streamed line {line} is a miss");
            assert!(c.access(2 * 128), "hot line survives the eviction caused by {line}");
        }
        assert_eq!(c.hits(), 4);
        // Each streamed line was the LRU victim of its successor.
        assert!(!c.access(4 * 128), "line 4 was evicted when line 6 arrived");
    }

    #[test]
    fn reset_restores_cold_misses_and_eviction_state() {
        let mut c = tiny();
        // Warm the cache into a known LRU state with some hits.
        c.access(0 * 128);
        c.access(2 * 128);
        c.access(0 * 128);
        assert_eq!((c.hits(), c.misses()), (1, 2));
        c.reset();
        assert_eq!((c.hits(), c.misses()), (0, 0), "reset must clear both counters");
        // Post-reset the set is empty: the same lines cold-miss again and
        // LRU order rebuilds from scratch (2 is victim, not 0).
        assert!(!c.access(0 * 128));
        assert!(!c.access(2 * 128));
        assert!(c.access(0 * 128), "line 0 resident again");
        assert!(!c.access(4 * 128));
        assert!(!c.access(2 * 128), "line 2 was LRU after the rebuilt order");
        assert_eq!(c.config().num_sets(), 2);
    }
}
