//! Kernel-launch statistics — the simulator's "hardware counters".

use serde::{Deserialize, Serialize};

/// Counters and timing of one kernel launch. Counter names follow the
/// `nvprof` metrics the paper reports in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GpuStats {
    /// 128-byte global **load** transactions issued (after coalescing).
    pub global_load_transactions: u64,
    /// 128-byte global **store** transactions issued.
    pub global_store_transactions: u64,
    /// Transactions served by L1.
    pub l1_hits: u64,
    /// Transactions missing L1.
    pub l1_misses: u64,
    /// L1 misses served by the L2 slice.
    pub l2_hits: u64,
    /// Transactions going to DRAM.
    pub l2_misses: u64,
    /// Shared-memory accesses (warp-level instructions).
    pub shared_accesses: u64,
    /// Warp-level branch instructions executed.
    pub branch_total: u64,
    /// Branches whose active lanes all agreed.
    pub branch_uniform: u64,
    /// Warp-level ALU instruction issues.
    pub alu_ops: u64,
    /// Total warps launched.
    pub warps_launched: u64,
    /// Blocks launched.
    pub blocks_launched: u64,
    /// Cycles SMs spent usefully issuing warp instructions (Σ per-warp
    /// issue slots).
    pub issue_cycles: u64,
    /// SM cycles not covered by issue — stalled on dependent-load
    /// latency the resident warps could not hide (Σ over SMs).
    pub mem_stall_cycles: u64,
    /// Modeled kernel duration in core-clock cycles.
    pub device_cycles: u64,
    /// Modeled kernel duration in seconds (`device_cycles / clock`), after
    /// applying the DRAM-bandwidth roofline.
    pub device_seconds: f64,
    /// Which of the three bounds set the kernel time.
    pub bound: TimeBound,
}

/// Which roofline term determined the kernel duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TimeBound {
    /// Warp-issue (compute) throughput.
    #[default]
    Issue,
    /// Dependent-load latency, after occupancy overlap.
    Latency,
    /// DRAM bandwidth.
    DramBandwidth,
}

impl GpuStats {
    /// Branch efficiency: uniform branches ÷ all branches (1.0 when no
    /// branches executed), as plotted in Fig. 8.
    pub fn branch_efficiency(&self) -> f64 {
        if self.branch_total == 0 {
            1.0
        } else {
            self.branch_uniform as f64 / self.branch_total as f64
        }
    }

    /// Bytes moved from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.l2_misses * 128
    }

    /// L1 hit rate over global transactions (1.0 when no accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Merges counters of another launch segment into this one (used by
    /// the per-SM parallel simulation; timing fields are combined by the
    /// engine, not here).
    ///
    /// The exhaustive destructuring forces every future field through
    /// this function: a new counter that is not added here (or a new
    /// timing field not explicitly listed as engine-combined) is a
    /// compile error, not silent data loss in multi-CTA runs.
    pub fn merge_counters(&mut self, other: &GpuStats) {
        let GpuStats {
            global_load_transactions,
            global_store_transactions,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            shared_accesses,
            branch_total,
            branch_uniform,
            alu_ops,
            warps_launched,
            blocks_launched,
            issue_cycles,
            mem_stall_cycles,
            // Timing is combined by the engine (slowest SM + roofline),
            // not summed here.
            device_cycles: _,
            device_seconds: _,
            bound: _,
        } = *other;
        self.global_load_transactions += global_load_transactions;
        self.global_store_transactions += global_store_transactions;
        self.l1_hits += l1_hits;
        self.l1_misses += l1_misses;
        self.l2_hits += l2_hits;
        self.l2_misses += l2_misses;
        self.shared_accesses += shared_accesses;
        self.branch_total += branch_total;
        self.branch_uniform += branch_uniform;
        self.alu_ops += alu_ops;
        self.warps_launched += warps_launched;
        self.blocks_launched += blocks_launched;
        self.issue_cycles += issue_cycles;
        self.mem_stall_cycles += mem_stall_cycles;
    }

    /// This launch's counters in the unified cross-path perf schema
    /// (DESIGN.md §17). `occupancy` is the resident-warp fraction the
    /// engine computed for the launch; `dram_stall_cycles` is the extra
    /// device time the DRAM-bandwidth roofline added beyond the compute
    /// time, in core-clock cycles. Busy/stall cycles are summed over
    /// SMs (like CPU cycles over cores), so they exceed `device_cycles`
    /// on multi-SM launches.
    #[cfg(feature = "telemetry")]
    pub fn perf_counters(
        &self,
        occupancy: f64,
        dram_stall_cycles: u64,
    ) -> rfx_telemetry::PerfCounters {
        rfx_telemetry::PerfCounters {
            l1_accesses: self.l1_hits + self.l1_misses,
            l1_hits: self.l1_hits,
            l1_misses: self.l1_misses,
            l2_accesses: self.l2_hits + self.l2_misses,
            l2_hits: self.l2_hits,
            l2_misses: self.l2_misses,
            dram_transactions: self.l2_misses,
            dram_bytes: self.dram_bytes(),
            busy_cycles: self.issue_cycles,
            stall_memory_cycles: self.mem_stall_cycles + dram_stall_cycles,
            // The issue model has no separate pipeline-fill phase, and
            // divergent-branch re-execution is already charged to issue.
            stall_fill_cycles: 0,
            stall_wasted_cycles: 0,
            occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_efficiency_edge_cases() {
        let mut s = GpuStats::default();
        assert_eq!(s.branch_efficiency(), 1.0);
        s.branch_total = 10;
        s.branch_uniform = 7;
        assert!((s.branch_efficiency() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = GpuStats { l1_hits: 3, branch_total: 2, ..Default::default() };
        let b = GpuStats { l1_hits: 4, branch_total: 5, l2_misses: 1, ..Default::default() };
        a.merge_counters(&b);
        assert_eq!(a.l1_hits, 7);
        assert_eq!(a.branch_total, 7);
        assert_eq!(a.dram_bytes(), 128);
    }

    #[test]
    fn hit_rate() {
        let s = GpuStats { l1_hits: 3, l1_misses: 1, ..Default::default() };
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }

    /// Every counter field must survive a merge; the destructuring (no
    /// `..`) makes this test — like `merge_counters` itself — fail to
    /// compile when a field is added, so it cannot silently go stale.
    #[test]
    fn merge_counters_is_exhaustive_over_counter_fields() {
        let mut acc = GpuStats::default();
        let seg = GpuStats {
            global_load_transactions: 1,
            global_store_transactions: 2,
            l1_hits: 3,
            l1_misses: 4,
            l2_hits: 5,
            l2_misses: 6,
            shared_accesses: 7,
            branch_total: 8,
            branch_uniform: 9,
            alu_ops: 10,
            warps_launched: 11,
            blocks_launched: 12,
            issue_cycles: 13,
            mem_stall_cycles: 14,
            device_cycles: 1000,
            device_seconds: 1.0,
            bound: TimeBound::Latency,
        };
        acc.merge_counters(&seg);
        acc.merge_counters(&seg);
        let GpuStats {
            global_load_transactions,
            global_store_transactions,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            shared_accesses,
            branch_total,
            branch_uniform,
            alu_ops,
            warps_launched,
            blocks_launched,
            issue_cycles,
            mem_stall_cycles,
            device_cycles,
            device_seconds,
            bound,
        } = acc;
        for (i, (got, per_seg)) in [
            (global_load_transactions, 1),
            (global_store_transactions, 2),
            (l1_hits, 3),
            (l1_misses, 4),
            (l2_hits, 5),
            (l2_misses, 6),
            (shared_accesses, 7),
            (branch_total, 8),
            (branch_uniform, 9),
            (alu_ops, 10),
            (warps_launched, 11),
            (blocks_launched, 12),
            (issue_cycles, 13),
            (mem_stall_cycles, 14),
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(got, 2 * per_seg, "counter field index {i} dropped by merge");
        }
        // Timing fields are the engine's to combine: merge leaves them.
        assert_eq!(device_cycles, 0);
        assert_eq!(device_seconds, 0.0);
        assert_eq!(bound, TimeBound::Issue);
    }
}
