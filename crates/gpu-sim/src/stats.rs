//! Kernel-launch statistics — the simulator's "hardware counters".

use serde::{Deserialize, Serialize};

/// Counters and timing of one kernel launch. Counter names follow the
/// `nvprof` metrics the paper reports in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GpuStats {
    /// 128-byte global **load** transactions issued (after coalescing).
    pub global_load_transactions: u64,
    /// 128-byte global **store** transactions issued.
    pub global_store_transactions: u64,
    /// Transactions served by L1.
    pub l1_hits: u64,
    /// Transactions missing L1.
    pub l1_misses: u64,
    /// L1 misses served by the L2 slice.
    pub l2_hits: u64,
    /// Transactions going to DRAM.
    pub l2_misses: u64,
    /// Shared-memory accesses (warp-level instructions).
    pub shared_accesses: u64,
    /// Warp-level branch instructions executed.
    pub branch_total: u64,
    /// Branches whose active lanes all agreed.
    pub branch_uniform: u64,
    /// Warp-level ALU instruction issues.
    pub alu_ops: u64,
    /// Total warps launched.
    pub warps_launched: u64,
    /// Blocks launched.
    pub blocks_launched: u64,
    /// Modeled kernel duration in core-clock cycles.
    pub device_cycles: u64,
    /// Modeled kernel duration in seconds (`device_cycles / clock`), after
    /// applying the DRAM-bandwidth roofline.
    pub device_seconds: f64,
    /// Which of the three bounds set the kernel time.
    pub bound: TimeBound,
}

/// Which roofline term determined the kernel duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TimeBound {
    /// Warp-issue (compute) throughput.
    #[default]
    Issue,
    /// Dependent-load latency, after occupancy overlap.
    Latency,
    /// DRAM bandwidth.
    DramBandwidth,
}

impl GpuStats {
    /// Branch efficiency: uniform branches ÷ all branches (1.0 when no
    /// branches executed), as plotted in Fig. 8.
    pub fn branch_efficiency(&self) -> f64 {
        if self.branch_total == 0 {
            1.0
        } else {
            self.branch_uniform as f64 / self.branch_total as f64
        }
    }

    /// Bytes moved from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.l2_misses * 128
    }

    /// L1 hit rate over global transactions (1.0 when no accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Merges counters of another launch segment into this one (used by
    /// the per-SM parallel simulation; timing fields are combined by the
    /// engine, not here).
    pub fn merge_counters(&mut self, other: &GpuStats) {
        self.global_load_transactions += other.global_load_transactions;
        self.global_store_transactions += other.global_store_transactions;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.shared_accesses += other.shared_accesses;
        self.branch_total += other.branch_total;
        self.branch_uniform += other.branch_uniform;
        self.alu_ops += other.alu_ops;
        self.warps_launched += other.warps_launched;
        self.blocks_launched += other.blocks_launched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_efficiency_edge_cases() {
        let mut s = GpuStats::default();
        assert_eq!(s.branch_efficiency(), 1.0);
        s.branch_total = 10;
        s.branch_uniform = 7;
        assert!((s.branch_efficiency() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = GpuStats { l1_hits: 3, branch_total: 2, ..Default::default() };
        let b = GpuStats { l1_hits: 4, branch_total: 5, l2_misses: 1, ..Default::default() };
        a.merge_counters(&b);
        assert_eq!(a.l1_hits, 7);
        assert_eq!(a.branch_total, 7);
        assert_eq!(a.dram_bytes(), 128);
    }

    #[test]
    fn hit_rate() {
        let s = GpuStats { l1_hits: 3, l1_misses: 1, ..Default::default() };
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }
}
