//! FIL-style sparse forest layout — the stand-in for Nvidia cuML's Forest
//! Inference Library, the paper's GPU baseline.
//!
//! cuML FIL stores each tree as an array of fixed-size nodes where a
//! node's two children are **adjacent** (`left` and `left + 1`), so one
//! traversal step costs a single node fetch (feature, threshold, and child
//! pointer are colocated) instead of CSR's four scattered reads. That is
//! the property responsible for FIL's ≈4–5× speedup over CSR in the paper,
//! and it is what this layout reproduces.

use crate::Label;
use rfx_forest::{DecisionTree, Node, RandomForest};
use serde::{Deserialize, Serialize};

/// One packed FIL node: 12 bytes, matching FIL's dense 8–16 B node records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilNode {
    /// Comparison feature, or −1 for a leaf.
    pub feature: i16,
    /// Comparison threshold, or the leaf's class label as f32.
    pub value: f32,
    /// Tree-local index of the left child; the right child is
    /// `left_child + 1`. Unused (0) for leaves.
    pub left_child: u32,
}

/// Size in bytes of one node as laid out in device memory.
pub const FIL_NODE_BYTES: usize = 12;

/// A whole forest in FIL-style form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilForest {
    nodes: Vec<FilNode>,
    /// Node base of tree `t` (len = num_trees + 1).
    tree_offset: Vec<u32>,
    num_classes: u32,
    num_features: usize,
}

impl FilForest {
    /// Converts a forest: nodes are re-emitted in BFS order with sibling
    /// pairs adjacent (the FIL invariant `right = left + 1`).
    pub fn build(forest: &RandomForest) -> Self {
        let mut nodes = Vec::with_capacity(forest.total_nodes());
        let mut tree_offset = Vec::with_capacity(forest.num_trees() + 1);
        for tree in forest.trees() {
            tree_offset.push(nodes.len() as u32);
            append_tree(tree, &mut nodes);
        }
        tree_offset.push(nodes.len() as u32);
        Self {
            nodes,
            tree_offset,
            num_classes: forest.num_classes(),
            num_features: forest.num_features(),
        }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.tree_offset.len() - 1
    }

    /// Number of classes voted over.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Query width expected by the traversals.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// All packed nodes.
    pub fn nodes(&self) -> &[FilNode] {
        &self.nodes
    }

    /// Node base offset of tree `t`.
    #[inline]
    pub fn tree_base(&self, t: usize) -> u32 {
        self.tree_offset[t]
    }

    /// Classifies `query` with tree `t` (one node fetch per level — the
    /// functional reference for the FIL GPU kernel).
    pub fn predict_tree(&self, t: usize, query: &[f32]) -> Label {
        let base = self.tree_offset[t] as usize;
        let mut n = 0usize;
        loop {
            let node = self.nodes[base + n];
            if node.feature < 0 {
                return node.value as Label;
            }
            let go_right = query[node.feature as usize] >= node.value;
            n = node.left_child as usize + usize::from(go_right);
        }
    }

    /// Majority-vote classification of one query.
    pub fn predict(&self, query: &[f32]) -> Label {
        let mut votes = vec![0u32; self.num_classes as usize];
        for t in 0..self.num_trees() {
            votes[self.predict_tree(t, query) as usize] += 1;
        }
        crate::majority(&votes)
    }

    /// Classifies like [`FilForest::predict_tree`] while reporting each
    /// simulated memory fetch to `sink`: one colocated 12 B node record
    /// per level within the packed `nodes` array (FIL's defining
    /// property — no topology indirection), plus the query feature read
    /// at every inner node.
    pub fn predict_tree_traced(
        &self,
        t: usize,
        query: &[f32],
        sink: &mut dyn crate::memprobe::FetchSink,
    ) -> Label {
        let base = self.tree_offset[t] as usize;
        let mut n = 0usize;
        loop {
            sink.attribute(((base + n) * FIL_NODE_BYTES) as u64, FIL_NODE_BYTES as u32);
            let node = self.nodes[base + n];
            if node.feature < 0 {
                return node.value as Label;
            }
            sink.query(node.feature as u32);
            let go_right = query[node.feature as usize] >= node.value;
            n = node.left_child as usize + usize::from(go_right);
        }
    }

    /// Byte footprint of the layout.
    pub fn footprint(&self) -> crate::footprint::LayoutFootprint {
        crate::footprint::LayoutFootprint {
            attribute_bytes: self.nodes.len() * FIL_NODE_BYTES,
            topology_bytes: 0, // topology is embedded in the node records
            index_bytes: self.tree_offset.len() * 4,
        }
    }
}

/// Re-emits one tree in BFS order with adjacent sibling pairs.
fn append_tree(tree: &DecisionTree, out: &mut Vec<FilNode>) {
    let base = out.len();
    // BFS relabel: old node id -> new tree-local id.
    let mut order: Vec<u32> = Vec::with_capacity(tree.num_nodes());
    let mut new_id = vec![u32::MAX; tree.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0u32);
    while let Some(id) = queue.pop_front() {
        new_id[id as usize] = order.len() as u32;
        order.push(id);
        if let Node::Inner { left, right, .. } = tree.nodes()[id as usize] {
            queue.push_back(left);
            queue.push_back(right);
        }
    }
    // BFS enqueues children in pairs, so siblings are adjacent and
    // right = left + 1 holds by construction.
    for &old in &order {
        match tree.nodes()[old as usize] {
            Node::Leaf { label } => {
                out.push(FilNode { feature: -1, value: label as f32, left_child: 0 })
            }
            Node::Inner { feature, threshold, left, .. } => out.push(FilNode {
                feature: feature as i16,
                value: threshold,
                left_child: new_id[left as usize],
            }),
        }
    }
    debug_assert_eq!(out.len() - base, tree.num_nodes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_forest(n_trees: usize, seed: u64) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees: Vec<DecisionTree> =
            (0..n_trees).map(|_| DecisionTree::random(&mut rng, 8, 7, 3, 0.3)).collect();
        RandomForest::from_trees(trees, 7, 3).unwrap()
    }

    #[test]
    fn sibling_adjacency_invariant() {
        let forest = random_forest(4, 2);
        let fil = FilForest::build(&forest);
        for t in 0..fil.num_trees() {
            let base = fil.tree_base(t) as usize;
            let end = fil.tree_offset[t + 1] as usize;
            for n in base..end {
                let node = fil.nodes()[n];
                if node.feature >= 0 {
                    let l = base + node.left_child as usize;
                    assert!(l + 1 < end + 1 && l > n, "children after parent, in range");
                    assert!(l < end, "right sibling in range");
                }
            }
        }
    }

    #[test]
    fn predicts_like_source_forest() {
        let forest = random_forest(6, 5);
        let fil = FilForest::build(&forest);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..400 {
            let q: Vec<f32> = (0..7).map(|_| rng.gen()).collect();
            assert_eq!(fil.predict(&q), forest.predict(&q));
            for t in 0..forest.num_trees() {
                assert_eq!(fil.predict_tree(t, &q), forest.trees()[t].predict(&q));
            }
        }
    }

    #[test]
    fn node_count_preserved() {
        let forest = random_forest(3, 9);
        let fil = FilForest::build(&forest);
        assert_eq!(fil.nodes().len(), forest.total_nodes());
    }

    #[test]
    fn single_leaf_tree() {
        let forest = RandomForest::from_trees(vec![DecisionTree::leaf(2)], 4, 3).unwrap();
        let fil = FilForest::build(&forest);
        assert_eq!(fil.predict(&[0.0; 4]), 2);
    }

    #[test]
    fn traced_traversal_matches_untraced_and_reports_node_records() {
        use crate::memprobe::CountingSink;
        let forest = random_forest(5, 11);
        let fil = FilForest::build(&forest);
        let mut rng = StdRng::seed_from_u64(23);
        let mut sink = CountingSink::default();
        let traversals = 100 * fil.num_trees() as u64;
        for _ in 0..100 {
            let q: Vec<f32> = (0..7).map(|_| rng.gen()).collect();
            for t in 0..fil.num_trees() {
                assert_eq!(fil.predict_tree_traced(t, &q, &mut sink), fil.predict_tree(t, &q));
            }
        }
        // One colocated 12 B record per visited node, no indirection.
        assert!(sink.attribute_fetches > traversals);
        assert_eq!(sink.attribute_bytes, sink.attribute_fetches * FIL_NODE_BYTES as u64);
        assert_eq!(sink.topology_fetches, 0);
        // Exactly one leaf per traversal; every inner visit reads the query.
        assert_eq!(sink.query_fetches, sink.attribute_fetches - traversals);
    }

    #[test]
    fn footprint_is_twelve_bytes_per_node() {
        let forest = random_forest(2, 1);
        let fil = FilForest::build(&forest);
        let fp = fil.footprint();
        assert_eq!(fp.attribute_bytes, fil.nodes().len() * 12);
        assert_eq!(fp.topology_bytes, 0);
    }
}
