//! Memory-footprint accounting (drives Fig. 6 of the paper).

use serde::{Deserialize, Serialize};

/// Byte breakdown of a forest layout in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LayoutFootprint {
    /// Node attributes: `feature_id` (2 B) + `value` (4 B) per slot — the
    /// paper's 48 bits per node.
    pub attribute_bytes: usize,
    /// Topology arrays: CSR's `children_arr`/`children_arr_idx`, or the
    /// hierarchical `subtree_connection` entries.
    pub topology_bytes: usize,
    /// Per-tree / per-subtree index arrays (offsets).
    pub index_bytes: usize,
}

impl LayoutFootprint {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.attribute_bytes + self.topology_bytes + self.index_bytes
    }

    /// Ratio of this footprint to another (the Fig. 6 y-axis is
    /// hierarchical ÷ CSR).
    pub fn ratio_to(&self, baseline: &LayoutFootprint) -> f64 {
        self.total() as f64 / baseline.total() as f64
    }

    /// Average resident bytes per tree, never zero.
    ///
    /// Shard sizing must use the footprint of the layout **actually being
    /// traversed** — a u8-quantized forest packs ~2.4× more trees into the
    /// same L2 budget than the f32 FIL records, and bin-packing from the
    /// f32 stride would leave that headroom unused. Every layout's
    /// `footprint()` reports its own resident bytes, so this helper is the
    /// one place per-tree cost is derived for `EnginePlan::auto` and the
    /// serve-layer footprint gauges.
    pub fn per_tree(&self, num_trees: usize) -> usize {
        (self.total() / num_trees.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrForest;
    use crate::hier::{builder::build_forest, HierConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfx_forest::{DecisionTree, RandomForest};

    fn forest(depth: usize, seed: u64) -> RandomForest {
        // leaf_prob 0.45 gives ragged, sparse trees with long thin paths —
        // the shape CART training produces on real data, and the shape for
        // which completeness padding is costly.
        let mut rng = StdRng::seed_from_u64(seed);
        let trees: Vec<DecisionTree> =
            (0..10).map(|_| DecisionTree::random(&mut rng, depth, 12, 2, 0.45)).collect();
        RandomForest::from_trees(trees, 12, 2).unwrap()
    }

    #[test]
    fn totals_add_up() {
        let fp = LayoutFootprint { attribute_bytes: 10, topology_bytes: 20, index_bytes: 5 };
        assert_eq!(fp.total(), 35);
        let base = LayoutFootprint { attribute_bytes: 70, ..Default::default() };
        assert!((fp.ratio_to(&base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bigger_subtrees_cost_more_memory() {
        // The paper's Fig. 6 observation: footprint grows with SD because
        // completeness padding grows.
        let f = forest(20, 3);
        let csr = CsrForest::build(&f).footprint();
        let ratio =
            |sd: u8| build_forest(&f, HierConfig::uniform(sd)).unwrap().footprint().ratio_to(&csr);
        let (r4, r6, r8) = (ratio(4), ratio(6), ratio(8));
        assert!(r8 > r6 && r6 > r4, "padding cost grows with SD: {r4} {r6} {r8}");
        // At SD=8 a sparse deep tree pads heavily past the CSR footprint.
        assert!(r8 > 1.0, "r8 = {r8}");
    }

    #[test]
    fn per_tree_is_layout_aware_and_never_zero() {
        let fp = LayoutFootprint { attribute_bytes: 100, topology_bytes: 20, index_bytes: 0 };
        assert_eq!(fp.per_tree(10), 12);
        assert_eq!(fp.per_tree(0), 120, "zero trees clamps the divisor");
        let empty = LayoutFootprint::default();
        assert_eq!(empty.per_tree(4), 1, "never zero");
        // A quantized layout reports fewer bytes per tree than its f32
        // counterpart for the same forest — the property shard sizing needs.
        let f = forest(12, 8);
        let fil = crate::fil::FilForest::build(&f).footprint();
        let qfil = crate::quant::QFilForest::<u8>::build(&f).unwrap().footprint();
        assert!(qfil.per_tree(f.num_trees()) < fil.per_tree(f.num_trees()));
    }

    #[test]
    fn attribute_bytes_are_48_bits_per_slot() {
        let f = forest(6, 4);
        let h = build_forest(&f, HierConfig::uniform(4)).unwrap();
        assert_eq!(h.footprint().attribute_bytes, h.total_slots() * 6);
    }
}
