//! Tree clustering by feature-access similarity — the paper's §3.2.1
//! "Optimization 1".
//!
//! The paper tested K-means clustering of trees so that trees touching
//! similar features sit adjacent in the memory layout (hoping for better
//! locality), and found **no significant benefit**. The ablation harness
//! reproduces that null result; this module provides the clustering:
//! K-means over per-tree feature-usage profiles, returning a permutation
//! that groups same-cluster trees together.

use rfx_forest::importance::feature_usage_profile;
use rfx_forest::RandomForest;

/// K-means over tree feature-usage profiles. Returns `(order, assignment)`
/// where `order` is a tree permutation grouping clusters contiguously and
/// `assignment[t]` is tree `t`'s cluster.
///
/// Deterministic: centroids are seeded by evenly spaced trees and Lloyd
/// iterations run to convergence or `max_iters`.
pub fn cluster_trees(
    forest: &RandomForest,
    k: usize,
    max_iters: usize,
) -> (Vec<usize>, Vec<usize>) {
    let n = forest.num_trees();
    let k = k.clamp(1, n);
    let d = forest.num_features();
    let profiles: Vec<Vec<f32>> =
        forest.trees().iter().map(|t| feature_usage_profile(t, d)).collect();

    // Evenly spaced initial centroids (deterministic, spread out).
    let mut centroids: Vec<Vec<f32>> = (0..k).map(|c| profiles[c * n / k].clone()).collect();
    let mut assignment = vec![0usize; n];

    for _ in 0..max_iters.max(1) {
        // Assign.
        let mut changed = false;
        for (t, p) in profiles.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| dist2(p, &centroids[a]).total_cmp(&dist2(p, &centroids[b])))
                .expect("k >= 1");
            if assignment[t] != best {
                assignment[t] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f32>> =
                profiles.iter().zip(&assignment).filter(|(_, &a)| a == c).map(|(p, _)| p).collect();
            if members.is_empty() {
                continue; // keep the old centroid
            }
            for (j, v) in centroid.iter_mut().enumerate() {
                *v = members.iter().map(|m| m[j]).sum::<f32>() / members.len() as f32;
            }
        }
    }

    // Stable grouped order: by cluster, then original index.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&t| (assignment[t], t));
    (order, assignment)
}

/// Rebuilds a forest with its trees permuted (predictions are unchanged —
/// majority voting is order-independent — but layouts built from the
/// reordered forest place same-cluster trees adjacently).
pub fn reorder_forest(forest: &RandomForest, order: &[usize]) -> RandomForest {
    assert_eq!(order.len(), forest.num_trees());
    let trees = order.iter().map(|&t| forest.trees()[t].clone()).collect();
    RandomForest::from_trees(trees, forest.num_features(), forest.num_classes())
        .expect("permutation of a valid forest is valid")
}

#[inline]
fn dist2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfx_forest::{DecisionTree, Node};

    /// Trees that split only on one feature each: clustering by profile
    /// must group them by that feature.
    fn single_feature_tree(f: u16) -> DecisionTree {
        DecisionTree::from_nodes(vec![
            Node::Inner { feature: f, threshold: 0.5, left: 1, right: 2 },
            Node::Leaf { label: 0 },
            Node::Inner { feature: f, threshold: 0.8, left: 3, right: 4 },
            Node::Leaf { label: 1 },
            Node::Leaf { label: 0 },
        ])
        .unwrap()
    }

    fn forest_of_features(features: &[u16]) -> RandomForest {
        let trees = features.iter().map(|&f| single_feature_tree(f)).collect();
        RandomForest::from_trees(trees, 4, 2).unwrap()
    }

    #[test]
    fn clusters_group_identical_profiles() {
        // Interleaved feature-0 and feature-3 trees.
        let forest = forest_of_features(&[0, 3, 0, 3, 0, 3]);
        let (order, assignment) = cluster_trees(&forest, 2, 20);
        // Same-feature trees share a cluster.
        assert_eq!(assignment[0], assignment[2]);
        assert_eq!(assignment[0], assignment[4]);
        assert_eq!(assignment[1], assignment[3]);
        assert_ne!(assignment[0], assignment[1]);
        // The order is a permutation with clusters contiguous.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<usize>>());
        let boundary: Vec<usize> = order.iter().map(|&t| assignment[t]).collect();
        assert!(boundary.windows(2).filter(|w| w[0] != w[1]).count() <= 1);
    }

    #[test]
    fn reorder_preserves_predictions() {
        let forest = forest_of_features(&[0, 1, 2, 3, 1, 0, 2]);
        let (order, _) = cluster_trees(&forest, 3, 20);
        let reordered = reorder_forest(&forest, &order);
        for q in [[0.1f32, 0.9, 0.4, 0.7], [0.6, 0.2, 0.9, 0.3], [0.85, 0.85, 0.85, 0.85]] {
            assert_eq!(forest.predict(&q), reordered.predict(&q));
        }
    }

    #[test]
    fn k_is_clamped() {
        let forest = forest_of_features(&[0, 1]);
        let (order, assignment) = cluster_trees(&forest, 10, 5);
        assert_eq!(order.len(), 2);
        assert!(assignment.iter().all(|&a| a < 2));
        let (_, one) = cluster_trees(&forest, 0, 5);
        assert!(one.iter().all(|&a| a == 0));
    }
}
