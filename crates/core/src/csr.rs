//! CSR (compressed sparse row) forest layout — the paper's baseline
//! (§2.3, Fig. 2b/2c).
//!
//! Topology is stored as `children_arr` / `children_arr_idx`: for every
//! inner node `i`, `children_arr[children_arr_idx[i]]` and
//! `children_arr[children_arr_idx[i] + 1]` are its left and right child
//! ids. Node attributes live in `feature_id` (−1 marks a leaf) and `value`
//! (threshold for inner nodes, class label for leaves). Each traversal
//! step therefore costs **four** potentially-irregular memory reads —
//! attribute pair plus two levels of indirection — which is exactly the
//! inefficiency the hierarchical layout removes.

use crate::Label;
use rfx_forest::{Node, RandomForest};
use serde::{Deserialize, Serialize};

/// Sentinel stored in `feature_id` for leaf nodes (paper uses −1).
pub const LEAF_FEATURE: i16 = -1;

/// A whole forest in packed CSR form: per-tree arrays are concatenated and
/// `tree_node_offset` / `tree_child_offset` locate each tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrForest {
    /// `feature_id[n]`: comparison feature of node `n`, or [`LEAF_FEATURE`].
    feature_id: Vec<i16>,
    /// `value[n]`: comparison threshold, or the leaf's class label as f32.
    value: Vec<f32>,
    /// Start of each node's children within `children_arr` (unused for
    /// leaves, 0 there).
    children_arr_idx: Vec<u32>,
    /// Child node ids, two consecutive entries per inner node (tree-local).
    children_arr: Vec<u32>,
    /// Node base of tree `t` (len = num_trees + 1).
    tree_node_offset: Vec<u32>,
    /// `children_arr` base of tree `t` (len = num_trees + 1).
    tree_child_offset: Vec<u32>,
    num_classes: u32,
    num_features: usize,
}

impl CsrForest {
    /// Converts a trained forest into CSR form. Node ids keep the source
    /// trees' ordering.
    pub fn build(forest: &RandomForest) -> Self {
        let total_nodes = forest.total_nodes();
        let mut feature_id = Vec::with_capacity(total_nodes);
        let mut value = Vec::with_capacity(total_nodes);
        let mut children_arr_idx = Vec::with_capacity(total_nodes);
        let mut children_arr = Vec::new();
        let mut tree_node_offset = Vec::with_capacity(forest.num_trees() + 1);
        let mut tree_child_offset = Vec::with_capacity(forest.num_trees() + 1);

        for tree in forest.trees() {
            tree_node_offset.push(feature_id.len() as u32);
            tree_child_offset.push(children_arr.len() as u32);
            let child_base = children_arr.len() as u32;
            for node in tree.nodes() {
                match *node {
                    Node::Leaf { label } => {
                        feature_id.push(LEAF_FEATURE);
                        value.push(label as f32);
                        children_arr_idx.push(0);
                    }
                    Node::Inner { feature, threshold, left, right } => {
                        feature_id.push(feature as i16);
                        value.push(threshold);
                        // Tree-local index into the packed children array.
                        children_arr_idx.push(children_arr.len() as u32 - child_base);
                        children_arr.push(left);
                        children_arr.push(right);
                    }
                }
            }
        }
        tree_node_offset.push(feature_id.len() as u32);
        tree_child_offset.push(children_arr.len() as u32);

        Self {
            feature_id,
            value,
            children_arr_idx,
            children_arr,
            tree_node_offset,
            tree_child_offset,
            num_classes: forest.num_classes(),
            num_features: forest.num_features(),
        }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.tree_node_offset.len() - 1
    }

    /// Number of classes voted over.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Query width expected by the traversals.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total node count across trees.
    pub fn total_nodes(&self) -> usize {
        self.feature_id.len()
    }

    /// Raw `feature_id` array (element size 2 B).
    pub fn feature_id(&self) -> &[i16] {
        &self.feature_id
    }

    /// Raw `value` array (element size 4 B).
    pub fn value(&self) -> &[f32] {
        &self.value
    }

    /// Raw `children_arr_idx` array (element size 4 B).
    pub fn children_arr_idx(&self) -> &[u32] {
        &self.children_arr_idx
    }

    /// Raw `children_arr` array (element size 4 B).
    pub fn children_arr(&self) -> &[u32] {
        &self.children_arr
    }

    /// Node base offset of tree `t`.
    #[inline]
    pub fn tree_node_base(&self, t: usize) -> u32 {
        self.tree_node_offset[t]
    }

    /// `children_arr` base offset of tree `t`.
    #[inline]
    pub fn tree_child_base(&self, t: usize) -> u32 {
        self.tree_child_offset[t]
    }

    /// Classifies `query` with tree `t`, following the paper's traversal
    /// loop (Fig. 1b over the Fig. 2 arrays). This is the functional
    /// reference for the CSR GPU/FPGA kernels.
    pub fn predict_tree(&self, t: usize, query: &[f32]) -> Label {
        let node_base = self.tree_node_offset[t] as usize;
        let child_base = self.tree_child_offset[t] as usize;
        let mut n = 0usize; // tree-local node id
        loop {
            let f = self.feature_id[node_base + n];
            let v = self.value[node_base + n];
            if f == LEAF_FEATURE {
                return v as Label;
            }
            let idx = self.children_arr_idx[node_base + n] as usize;
            let go_left = query[f as usize] < v;
            n = self.children_arr[child_base + idx + usize::from(!go_left)] as usize;
        }
    }

    /// Majority-vote classification of one query over all trees.
    pub fn predict(&self, query: &[f32]) -> Label {
        let mut votes = vec![0u32; self.num_classes as usize];
        for t in 0..self.num_trees() {
            votes[self.predict_tree(t, query) as usize] += 1;
        }
        crate::majority(&votes)
    }

    /// Classifies like [`CsrForest::predict_tree`] while reporting each
    /// simulated memory fetch to `sink` — the four scattered reads per
    /// level the module docs describe. The attribute region lays
    /// `feature_id` (2 B/node) then `value` (4 B/node) back to back;
    /// the topology region lays `children_arr_idx` then `children_arr`
    /// (4 B each).
    pub fn predict_tree_traced(
        &self,
        t: usize,
        query: &[f32],
        sink: &mut dyn crate::memprobe::FetchSink,
    ) -> Label {
        let node_base = self.tree_node_offset[t] as usize;
        let child_base = self.tree_child_offset[t] as usize;
        let value_base = (self.feature_id.len() * 2) as u64;
        let children_base = (self.children_arr_idx.len() * 4) as u64;
        let mut n = 0usize;
        loop {
            let g = node_base + n;
            sink.attribute((g * 2) as u64, 2);
            sink.attribute(value_base + (g * 4) as u64, 4);
            let f = self.feature_id[g];
            let v = self.value[g];
            if f == LEAF_FEATURE {
                return v as Label;
            }
            sink.topology((g * 4) as u64, 4);
            let idx = self.children_arr_idx[g] as usize;
            sink.query(f as u32);
            let go_left = query[f as usize] < v;
            let slot = child_base + idx + usize::from(!go_left);
            sink.topology(children_base + (slot * 4) as u64, 4);
            n = self.children_arr[slot] as usize;
        }
    }

    /// Memory footprint in bytes of each CSR array (the Fig. 6 baseline).
    pub fn footprint(&self) -> crate::footprint::LayoutFootprint {
        crate::footprint::LayoutFootprint {
            attribute_bytes: self.feature_id.len() * 2 + self.value.len() * 4,
            topology_bytes: self.children_arr_idx.len() * 4 + self.children_arr.len() * 4,
            index_bytes: (self.tree_node_offset.len() + self.tree_child_offset.len()) * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rfx_forest::DecisionTree;

    /// The Fig. 2a example tree.
    fn paper_tree() -> DecisionTree {
        DecisionTree::from_nodes(vec![
            Node::Inner { feature: 1, threshold: 2.5, left: 1, right: 2 },
            Node::Leaf { label: 0 },
            Node::Inner { feature: 4, threshold: 0.5, left: 3, right: 4 },
            Node::Inner { feature: 8, threshold: 5.4, left: 7, right: 8 },
            Node::Inner { feature: 20, threshold: 8.8, left: 5, right: 6 },
            Node::Leaf { label: 1 },
            Node::Leaf { label: 0 },
            Node::Leaf { label: 0 },
            Node::Leaf { label: 1 },
        ])
        .unwrap()
    }

    fn forest_of(trees: Vec<DecisionTree>, nf: usize) -> RandomForest {
        RandomForest::from_trees(trees, nf, 2).unwrap()
    }

    #[test]
    fn paper_figure_arrays() {
        let csr = CsrForest::build(&forest_of(vec![paper_tree()], 21));
        // Fig. 2c attribute rows.
        assert_eq!(csr.feature_id(), &[1, -1, 4, 8, 20, -1, -1, -1, -1]);
        assert_eq!(csr.value(), &[2.5, 0.0, 0.5, 5.4, 8.8, 1.0, 0.0, 0.0, 1.0]);
        // Fig. 2b topology: children of node 4 live at children_arr[6..8].
        assert_eq!(csr.children_arr_idx()[4], 6);
        assert_eq!(&csr.children_arr()[6..8], &[5, 6]);
        assert_eq!(csr.children_arr().len(), 8, "two entries per inner node");
    }

    #[test]
    fn predicts_like_source_tree() {
        let tree = paper_tree();
        let csr = CsrForest::build(&forest_of(vec![tree.clone()], 21));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let q: Vec<f32> = (0..21).map(|_| rng.gen::<f32>() * 10.0).collect();
            assert_eq!(csr.predict_tree(0, &q), tree.predict(&q));
        }
    }

    #[test]
    fn multi_tree_offsets_and_votes() {
        let mut rng = StdRng::seed_from_u64(9);
        let trees: Vec<DecisionTree> =
            (0..7).map(|_| DecisionTree::random(&mut rng, 6, 8, 2, 0.3)).collect();
        let forest = forest_of(trees, 8);
        let csr = CsrForest::build(&forest);
        assert_eq!(csr.num_trees(), 7);
        assert_eq!(csr.total_nodes(), forest.total_nodes());
        for _ in 0..300 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen()).collect();
            assert_eq!(csr.predict(&q), forest.predict(&q));
            for t in 0..7 {
                assert_eq!(csr.predict_tree(t, &q), forest.trees()[t].predict(&q));
            }
        }
    }

    #[test]
    fn single_leaf_tree_works() {
        let csr = CsrForest::build(&forest_of(vec![DecisionTree::leaf(1)], 3));
        assert_eq!(csr.predict_tree(0, &[0.0; 3]), 1);
        assert!(csr.children_arr().is_empty());
    }

    #[test]
    fn traced_traversal_matches_untraced_and_reports_four_reads_per_level() {
        use crate::memprobe::CountingSink;
        let mut rng = StdRng::seed_from_u64(31);
        let trees: Vec<DecisionTree> =
            (0..5).map(|_| DecisionTree::random(&mut rng, 7, 8, 3, 0.3)).collect();
        let csr = CsrForest::build(&RandomForest::from_trees(trees, 8, 3).unwrap());
        let mut sink = CountingSink::default();
        let traversals = 200 * csr.num_trees() as u64;
        for _ in 0..200 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen()).collect();
            for t in 0..csr.num_trees() {
                assert_eq!(csr.predict_tree_traced(t, &q, &mut sink), csr.predict_tree(t, &q));
            }
        }
        // Every visit reads feature_id (2 B) + value (4 B); inner visits
        // add two topology reads (children_arr_idx + children_arr).
        let visits = sink.attribute_fetches / 2;
        let inner_visits = visits - traversals;
        assert_eq!(sink.attribute_bytes, visits * 6);
        assert_eq!(sink.topology_fetches, inner_visits * 2);
        assert_eq!(sink.topology_bytes, inner_visits * 8);
        assert_eq!(sink.query_fetches, inner_visits);
    }

    #[test]
    fn footprint_accounts_all_arrays() {
        let csr = CsrForest::build(&forest_of(vec![paper_tree()], 21));
        let fp = csr.footprint();
        // 9 nodes: attrs = 9*(2+4); topology = 9*4 + 8*4.
        assert_eq!(fp.attribute_bytes, 9 * 6);
        assert_eq!(fp.topology_bytes, 9 * 4 + 8 * 4);
        assert_eq!(fp.total(), fp.attribute_bytes + fp.topology_bytes + fp.index_bytes);
    }
}
