//! Construction of the hierarchical layout from trained forests.

use super::{HierConfig, HierForest, LEAF_FEATURE, NULL_SUBTREE, PAD_FEATURE};
use crate::LayoutError;
use rfx_forest::{DecisionTree, Node, RandomForest};
use std::collections::VecDeque;

/// Builds the hierarchical layout for a whole forest.
///
/// Subtrees are assigned global ids in per-tree breadth-first order, so a
/// tree's root subtree is the first of its contiguous id range and the
/// connection arrays always point "forward" (the layout is cycle-free by
/// construction).
pub fn build_forest(forest: &RandomForest, config: HierConfig) -> Result<HierForest, LayoutError> {
    config.validate()?;
    let mut out = HierForest {
        subtree_node_offset: vec![0],
        connection_offset: vec![0],
        feature_id: Vec::new(),
        value: Vec::new(),
        subtree_connection: Vec::new(),
        tree_subtree_offset: Vec::new(),
        num_classes: forest.num_classes(),
        num_features: forest.num_features(),
        config,
    };
    for tree in forest.trees() {
        append_tree(tree, config, &mut out)?;
    }
    out.tree_subtree_offset.push(out.num_subtrees() as u32);
    Ok(out)
}

/// Builds the layout for a single tree (useful in tests and tools);
/// wraps it as a one-tree forest.
pub fn build_tree(
    tree: &DecisionTree,
    num_features: usize,
    num_classes: u32,
    config: HierConfig,
) -> Result<HierForest, LayoutError> {
    let forest = RandomForest::from_trees(vec![tree.clone()], num_features, num_classes)
        .map_err(|e| LayoutError::Corrupt { detail: e.to_string() })?;
    build_forest(&forest, config)
}

fn append_tree(
    tree: &DecisionTree,
    config: HierConfig,
    out: &mut HierForest,
) -> Result<(), LayoutError> {
    let first_id = out.num_subtrees() as u32;
    out.tree_subtree_offset.push(first_id);

    // FIFO queue of original-tree roots of pending subtrees. Ids are
    // assigned at enqueue time; FIFO processing emits them in id order.
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);
    let mut next_id = first_id + 1; // id of the next subtree to be enqueued
    let mut emitted = first_id;

    while let Some(root) = queue.pop_front() {
        let cap = if emitted == first_id {
            config.root_subtree_depth as usize
        } else {
            config.subtree_depth as usize
        };
        emitted += 1;

        // Breadth-first slot grid, level by level, stopping at the cap or
        // when a level holds no real node.
        let mut levels: Vec<Vec<Option<u32>>> = vec![vec![Some(root)]];
        while levels.len() < cap {
            let prev = levels.last().expect("at least the root level exists");
            let mut next: Vec<Option<u32>> = Vec::with_capacity(prev.len() * 2);
            let mut any = false;
            for slot in prev {
                match slot.map(|id| &tree.nodes()[id as usize]) {
                    Some(Node::Inner { left, right, .. }) => {
                        next.push(Some(*left));
                        next.push(Some(*right));
                        any = true;
                    }
                    _ => {
                        next.push(None);
                        next.push(None);
                    }
                }
            }
            if !any {
                break;
            }
            levels.push(next);
        }

        // Emit slots in BFS order.
        for level in &levels {
            for slot in level {
                match slot.map(|id| &tree.nodes()[id as usize]) {
                    Some(Node::Inner { feature, threshold, .. }) => {
                        out.feature_id.push(*feature as i16);
                        out.value.push(*threshold);
                    }
                    Some(Node::Leaf { label }) => {
                        out.feature_id.push(LEAF_FEATURE);
                        out.value.push(*label as f32);
                    }
                    None => {
                        out.feature_id.push(PAD_FEATURE);
                        out.value.push(0.0);
                    }
                }
            }
        }
        out.subtree_node_offset.push(out.feature_id.len() as u32);

        // Connections: bottom-level inner nodes hand off to new subtrees.
        let bottom = levels.last().expect("non-empty");
        let spawning = bottom.iter().any(|slot| {
            matches!(slot.map(|id| &tree.nodes()[id as usize]), Some(Node::Inner { .. }))
        });
        if spawning {
            for slot in bottom {
                match slot.map(|id| &tree.nodes()[id as usize]) {
                    Some(Node::Inner { left, right, .. }) => {
                        out.subtree_connection.push(next_id);
                        out.subtree_connection.push(next_id + 1);
                        next_id += 2;
                        queue.push_back(*left);
                        queue.push_back(*right);
                    }
                    _ => {
                        out.subtree_connection.push(NULL_SUBTREE);
                        out.subtree_connection.push(NULL_SUBTREE);
                    }
                }
            }
        }
        out.connection_offset.push(out.subtree_connection.len() as u32);
    }
    debug_assert_eq!(next_id, emitted, "every enqueued subtree was emitted");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The Fig. 2a example tree.
    fn paper_tree() -> DecisionTree {
        DecisionTree::from_nodes(vec![
            Node::Inner { feature: 1, threshold: 2.5, left: 1, right: 2 },
            Node::Leaf { label: 0 },
            Node::Inner { feature: 4, threshold: 0.5, left: 3, right: 4 },
            Node::Inner { feature: 8, threshold: 5.4, left: 7, right: 8 },
            Node::Inner { feature: 20, threshold: 8.8, left: 5, right: 6 },
            Node::Leaf { label: 1 },
            Node::Leaf { label: 0 },
            Node::Leaf { label: 0 },
            Node::Leaf { label: 1 },
        ])
        .unwrap()
    }

    #[test]
    fn paper_example_sd3_structure() {
        let h = build_tree(&paper_tree(), 21, 2, HierConfig::uniform(3)).unwrap();
        // Subtree 0: levels {0}, {1,2}, {pad,pad,3,4} = 7 slots with 2 pads
        // (the dotted nodes of Fig. 3a).
        assert_eq!(h.subtree_size(0), 7);
        assert_eq!(h.subtree_depth(0), 3);
        assert_eq!(&h.feature_id()[..7], &[1, -1, 4, PAD_FEATURE, PAD_FEATURE, 8, 20]);
        // Bottom-level inner nodes (old 3 and 4) spawn one subtree per
        // child: four single-leaf subtrees.
        assert_eq!(h.num_subtrees(), 5);
        for s in 1..5 {
            assert_eq!(h.subtree_size(s), 1);
            assert_eq!(h.subtree_depth(s), 1);
        }
        // Connection rows of subtree 0: two pads without children, then
        // old3 -> subtrees 1,2 and old4 -> subtrees 3,4.
        assert_eq!(
            h.subtree_connection(),
            &[NULL_SUBTREE, NULL_SUBTREE, NULL_SUBTREE, NULL_SUBTREE, 1, 2, 3, 4]
        );
        // Leaf subtrees carry the original leaf labels (old 7, 8, 5, 6).
        assert_eq!(&h.value()[7..], &[0.0, 1.0, 1.0, 0.0]);
        assert!(!h.has_connections(1));
    }

    #[test]
    fn paper_example_predicts_identically() {
        let tree = paper_tree();
        for sd in 1..=6u8 {
            let h = build_tree(&tree, 21, 2, HierConfig::uniform(sd)).unwrap();
            let mut rng = StdRng::seed_from_u64(sd as u64);
            for _ in 0..400 {
                let q: Vec<f32> = (0..21).map(|_| rng.gen::<f32>() * 10.0).collect();
                assert_eq!(h.predict_tree(0, &q), tree.predict(&q), "sd={sd}");
            }
        }
    }

    #[test]
    fn deep_enough_cap_gives_single_subtree() {
        let tree = paper_tree(); // depth 3 => 4 levels needed? depth()==3 edges, 4 levels
        let h = build_tree(&tree, 21, 2, HierConfig::uniform(4)).unwrap();
        assert_eq!(h.num_subtrees(), 1);
        assert_eq!(h.subtree_size(0), 15);
        assert!(h.subtree_connection().is_empty());
    }

    #[test]
    fn shallow_levels_are_trimmed() {
        // A single-leaf tree under a deep cap must not allocate 2^sd slots.
        let h = build_tree(&DecisionTree::leaf(1), 4, 2, HierConfig::uniform(8)).unwrap();
        assert_eq!(h.num_subtrees(), 1);
        assert_eq!(h.subtree_size(0), 1);
        assert_eq!(h.predict_tree(0, &[0.0; 4]), 1);
    }

    #[test]
    fn root_subtree_depth_is_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let tree = DecisionTree::random(&mut rng, 12, 6, 2, 0.15);
        let h = build_tree(&tree, 6, 2, HierConfig::with_root(3, 6)).unwrap();
        assert_eq!(h.subtree_depth(h.tree_root_subtree(0)), 6);
        // Non-root subtrees never exceed sd levels.
        for s in 1..h.num_subtrees() as u32 {
            assert!(h.subtree_depth(s) <= 3, "subtree {s} too deep");
        }
    }

    #[test]
    fn random_trees_predict_identically_across_configs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let depth = rng.gen_range(1..=10);
            let tree = DecisionTree::random(&mut rng, depth, 9, 3, 0.3);
            for cfg in [
                HierConfig::uniform(1),
                HierConfig::uniform(2),
                HierConfig::uniform(4),
                HierConfig::with_root(2, 5),
                HierConfig::with_root(4, 8),
            ] {
                let h = build_tree(&tree, 9, 3, cfg).unwrap();
                for _ in 0..50 {
                    let q: Vec<f32> = (0..9).map(|_| rng.gen()).collect();
                    assert_eq!(h.predict_tree(0, &q), tree.predict(&q), "{cfg:?}");
                }
            }
        }
    }

    #[test]
    fn forest_build_has_contiguous_tree_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let trees: Vec<DecisionTree> =
            (0..5).map(|_| DecisionTree::random(&mut rng, 7, 8, 2, 0.3)).collect();
        let forest = RandomForest::from_trees(trees, 8, 2).unwrap();
        let h = build_forest(&forest, HierConfig::uniform(3)).unwrap();
        assert_eq!(h.num_trees(), 5);
        let mut covered = 0u32;
        for t in 0..5 {
            let r = h.tree_subtrees(t);
            assert_eq!(r.start, covered, "ranges contiguous");
            assert!(!r.is_empty());
            covered = r.end;
        }
        assert_eq!(covered as usize, h.num_subtrees());
        // Forest-level predictions match.
        for _ in 0..200 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen()).collect();
            assert_eq!(h.predict(&q), forest.predict(&q));
        }
    }

    #[test]
    fn slot_count_matches_offsets_and_real_nodes_conserved() {
        let mut rng = StdRng::seed_from_u64(19);
        let tree = DecisionTree::random(&mut rng, 9, 5, 2, 0.25);
        let h = build_tree(&tree, 5, 2, HierConfig::uniform(4)).unwrap();
        assert_eq!(*h.subtree_node_offset().last().unwrap() as usize, h.total_slots());
        let stats = h.stats();
        assert_eq!(stats.real_slots, tree.num_nodes(), "every node placed exactly once");
        assert_eq!(stats.total_slots, stats.real_slots + stats.pad_slots);
    }

    #[test]
    fn rejects_bad_config() {
        let err = build_tree(&paper_tree(), 21, 2, HierConfig::uniform(0)).unwrap_err();
        assert!(matches!(err, LayoutError::BadConfig { .. }));
        let err = build_tree(&paper_tree(), 21, 2, HierConfig::with_root(4, 21)).unwrap_err();
        assert!(matches!(err, LayoutError::BadConfig { .. }));
    }

    #[test]
    fn larger_sd_means_fewer_subtrees_more_padding() {
        let mut rng = StdRng::seed_from_u64(23);
        let tree = DecisionTree::random(&mut rng, 14, 10, 2, 0.2);
        let small = build_tree(&tree, 10, 2, HierConfig::uniform(2)).unwrap().stats();
        let large = build_tree(&tree, 10, 2, HierConfig::uniform(8)).unwrap().stats();
        assert!(large.num_subtrees < small.num_subtrees);
        assert!(large.pad_slots >= small.pad_slots);
        assert!(large.connection_entries <= small.connection_entries);
    }
}
