//! The paper's contribution: the **hierarchical decision-tree layout**
//! (§3.1, Fig. 3).
//!
//! Every decision tree is cut into *complete* binary subtrees of at most
//! `subtree_depth` levels (the root subtree may use a larger
//! `root_subtree_depth`, §3.2 "Hybrid"). Inside a subtree, children are
//! found arithmetically — node `n`'s children are `2n+1` / `2n+2` — so the
//! only indirect (CSR-like) accesses left are the per-boundary hops through
//! `connection_offset` / `subtree_connection`. Completeness is enforced by
//! padding missing slots with null nodes ([`PAD_FEATURE`]).
//!
//! One reading note versus Fig. 3: the paper's prose is ambiguous about
//! whether a spawned subtree is rooted at a boundary node or at its
//! children. We implement the self-consistent variant the text describes
//! ("leaf nodes of subtrees connect to the root nodes of different
//! subtrees"): **each child of a bottom-level inner node roots its own new
//! subtree**, and a bottom-level child that is a tree leaf becomes a
//! single-node subtree. All quantitative claims (arithmetic in-subtree
//! indexing, boundary-only indirection, `2^SD − 1` slots, padding overhead
//! growth with SD) carry over unchanged.

pub mod builder;

use crate::{footprint::LayoutFootprint, Label};
use serde::{Deserialize, Serialize};

/// `feature_id` sentinel for a tree leaf (as in CSR, the paper uses −1).
pub const LEAF_FEATURE: i16 = -1;
/// `feature_id` sentinel for a padding slot added to complete a subtree.
/// Pad slots are unreachable during traversal.
pub const PAD_FEATURE: i16 = -2;
/// `subtree_connection` sentinel for "no subtree on this side".
pub const NULL_SUBTREE: u32 = u32::MAX;

/// Layout tuning parameters (the paper's SD and RSD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HierConfig {
    /// Maximum subtree depth in levels (paper sweeps 4, 6, 8).
    pub subtree_depth: u8,
    /// Maximum depth of each tree's **root** subtree (paper sweeps 8–12);
    /// set equal to `subtree_depth` for the uniform layout.
    pub root_subtree_depth: u8,
}

impl HierConfig {
    /// Uniform layout: every subtree capped at `sd` levels.
    pub fn uniform(sd: u8) -> Self {
        Self { subtree_depth: sd, root_subtree_depth: sd }
    }

    /// Enlarged root subtree (`rsd`), `sd` elsewhere.
    pub fn with_root(sd: u8, rsd: u8) -> Self {
        Self { subtree_depth: sd, root_subtree_depth: rsd }
    }

    /// Bounds check: depths in `1..=20` (a depth-20 subtree already holds
    /// ~1 M slots; deeper caps are never useful and would only risk
    /// accidental memory blow-ups).
    pub fn validate(&self) -> Result<(), crate::LayoutError> {
        for (name, v) in
            [("subtree_depth", self.subtree_depth), ("root_subtree_depth", self.root_subtree_depth)]
        {
            if !(1..=20).contains(&v) {
                return Err(crate::LayoutError::BadConfig {
                    detail: format!("{name} must be in 1..=20, got {v}"),
                });
            }
        }
        Ok(())
    }
}

/// A whole forest in the hierarchical layout (packed arrays, global
/// subtree ids).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierForest {
    /// Node-array base of subtree `s`; `len = num_subtrees + 1`. A
    /// subtree's slot count is always `2^d − 1` for its depth `d`.
    pub(crate) subtree_node_offset: Vec<u32>,
    /// Connection-array base of subtree `s`; `len = num_subtrees + 1`.
    /// Subtrees with no outgoing connections own zero entries.
    pub(crate) connection_offset: Vec<u32>,
    /// Per-slot comparison feature, [`LEAF_FEATURE`], or [`PAD_FEATURE`].
    pub(crate) feature_id: Vec<i16>,
    /// Per-slot threshold (inner) or class label as f32 (leaf); 0 for pads.
    pub(crate) value: Vec<f32>,
    /// Two entries per bottom-level slot of each connected subtree:
    /// global id of the left/right target subtree or [`NULL_SUBTREE`].
    pub(crate) subtree_connection: Vec<u32>,
    /// First (root) subtree of tree `t`; `len = num_trees + 1`. Each
    /// tree's subtrees occupy a contiguous id range.
    pub(crate) tree_subtree_offset: Vec<u32>,
    pub(crate) num_classes: u32,
    pub(crate) num_features: usize,
    pub(crate) config: HierConfig,
}

impl HierForest {
    /// Number of trees.
    #[inline]
    pub fn num_trees(&self) -> usize {
        self.tree_subtree_offset.len() - 1
    }

    /// Total subtree count across the forest.
    #[inline]
    pub fn num_subtrees(&self) -> usize {
        self.subtree_node_offset.len() - 1
    }

    /// Number of classes voted over.
    #[inline]
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Query width expected by the traversals.
    #[inline]
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The layout parameters this forest was built with.
    #[inline]
    pub fn config(&self) -> HierConfig {
        self.config
    }

    /// Global id of tree `t`'s root subtree.
    #[inline]
    pub fn tree_root_subtree(&self, t: usize) -> u32 {
        self.tree_subtree_offset[t]
    }

    /// Global subtree-id range owned by tree `t`.
    #[inline]
    pub fn tree_subtrees(&self, t: usize) -> std::ops::Range<u32> {
        self.tree_subtree_offset[t]..self.tree_subtree_offset[t + 1]
    }

    /// Slot-array base of subtree `s`.
    #[inline]
    pub fn subtree_base(&self, s: u32) -> u32 {
        self.subtree_node_offset[s as usize]
    }

    /// Slot count of subtree `s` (always `2^d − 1`).
    #[inline]
    pub fn subtree_size(&self, s: u32) -> u32 {
        self.subtree_node_offset[s as usize + 1] - self.subtree_node_offset[s as usize]
    }

    /// Depth (levels) of subtree `s`.
    #[inline]
    pub fn subtree_depth(&self, s: u32) -> u32 {
        (self.subtree_size(s) + 1).trailing_zeros()
    }

    /// Connection-array base of subtree `s` (meaningful only when the
    /// subtree has outgoing connections).
    #[inline]
    pub fn connection_base(&self, s: u32) -> u32 {
        self.connection_offset[s as usize]
    }

    /// Whether subtree `s` owns any connection entries.
    #[inline]
    pub fn has_connections(&self, s: u32) -> bool {
        self.connection_offset[s as usize + 1] > self.connection_offset[s as usize]
    }

    /// Raw per-slot feature array (element size 2 B).
    pub fn feature_id(&self) -> &[i16] {
        &self.feature_id
    }

    /// Raw per-slot value array (element size 4 B).
    pub fn value(&self) -> &[f32] {
        &self.value
    }

    /// Raw connection array (element size 4 B).
    pub fn subtree_connection(&self) -> &[u32] {
        &self.subtree_connection
    }

    /// Raw subtree node-offset array (element size 4 B).
    pub fn subtree_node_offset(&self) -> &[u32] {
        &self.subtree_node_offset
    }

    /// Raw connection-offset array (element size 4 B).
    pub fn connection_offset(&self) -> &[u32] {
        &self.connection_offset
    }

    /// Total slot count (real + pad).
    pub fn total_slots(&self) -> usize {
        self.feature_id.len()
    }

    /// Classifies `query` with tree `t` — the paper's hierarchical
    /// traversal (§3.2, "traversal within a single subtree"): arithmetic
    /// `2n+1 / 2n+2` descent inside the subtree, one indirection through
    /// the connection arrays at each subtree boundary.
    pub fn predict_tree(&self, t: usize, query: &[f32]) -> Label {
        let mut s = self.tree_root_subtree(t);
        loop {
            let base = self.subtree_base(s) as usize;
            let size = self.subtree_size(s);
            let mut n = 0u32;
            'subtree: loop {
                let f = self.feature_id[base + n as usize];
                let v = self.value[base + n as usize];
                if f == LEAF_FEATURE {
                    return v as Label;
                }
                debug_assert_ne!(f, PAD_FEATURE, "pad slot reached: corrupt layout");
                let go_right = query[f as usize] >= v;
                let child = 2 * n + 1 + u32::from(go_right);
                if child < size {
                    n = child;
                    continue 'subtree;
                }
                // `n` is on the bottom level: hop to the connected subtree.
                let p = n - (size >> 1);
                let ci = self.connection_base(s) + 2 * p + u32::from(go_right);
                let next = self.subtree_connection[ci as usize];
                debug_assert_ne!(next, NULL_SUBTREE, "null connection taken: corrupt layout");
                s = next;
                break 'subtree;
            }
        }
    }

    /// Majority-vote classification of one query.
    pub fn predict(&self, query: &[f32]) -> Label {
        let mut votes = vec![0u32; self.num_classes as usize];
        for t in 0..self.num_trees() {
            votes[self.predict_tree(t, query) as usize] += 1;
        }
        crate::majority(&votes)
    }

    /// Byte footprint of the layout (hierarchal side of Fig. 6).
    pub fn footprint(&self) -> LayoutFootprint {
        LayoutFootprint {
            attribute_bytes: self.feature_id.len() * 2 + self.value.len() * 4,
            topology_bytes: self.subtree_connection.len() * 4,
            index_bytes: (self.subtree_node_offset.len()
                + self.connection_offset.len()
                + self.tree_subtree_offset.len())
                * 4,
        }
    }

    /// Structural statistics used by the memory study and the kernels.
    pub fn stats(&self) -> HierStats {
        let pad_slots = self.feature_id.iter().filter(|&&f| f == PAD_FEATURE).count();
        let real_slots = self.total_slots() - pad_slots;
        let root_slots: usize = (0..self.num_trees())
            .map(|t| self.subtree_size(self.tree_root_subtree(t)) as usize)
            .sum();
        HierStats {
            num_subtrees: self.num_subtrees(),
            total_slots: self.total_slots(),
            pad_slots,
            real_slots,
            connection_entries: self.subtree_connection.len(),
            root_subtree_slots: root_slots,
        }
    }
}

/// Aggregate structural statistics of a [`HierForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierStats {
    /// Total subtrees across the forest.
    pub num_subtrees: usize,
    /// Total slots (real + pad).
    pub total_slots: usize,
    /// Padding slots added for completeness.
    pub pad_slots: usize,
    /// Slots holding real tree nodes.
    pub real_slots: usize,
    /// Entries in the `subtree_connection` array.
    pub connection_entries: usize,
    /// Combined slot count of all root subtrees (what the hybrid kernel
    /// stages into on-chip memory).
    pub root_subtree_slots: usize,
}
