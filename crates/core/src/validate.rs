//! Deep structural validation of layouts, and equivalence oracles used by
//! tests across the workspace.

use crate::hier::{HierForest, LEAF_FEATURE, NULL_SUBTREE, PAD_FEATURE};
use crate::LayoutError;

/// Checks every structural invariant of a [`HierForest`]:
///
/// 1. offset arrays are monotone and sized `num_subtrees + 1`;
/// 2. every subtree's slot count is `2^d − 1` for some `d ≥ 1` within the
///    configured caps;
/// 3. connection blocks are either empty or exactly `2 · 2^(d−1)` entries;
/// 4. connection targets are in range, stay within the owning tree's
///    subtree range, and point strictly forward (no cycles);
/// 5. every non-root subtree is referenced exactly once (the subtrees form
///    a forest);
/// 6. bottom-level inner slots have two non-null connections and all other
///    connection entries are null;
/// 7. pad slots are unreachable from the subtree root.
pub fn validate_hier(h: &HierForest) -> Result<(), LayoutError> {
    let corrupt = |detail: String| Err(LayoutError::Corrupt { detail });
    let ns = h.num_subtrees();
    if h.subtree_node_offset().len() != ns + 1 || h.connection_offset().len() != ns + 1 {
        return corrupt("offset arrays have wrong length".into());
    }
    if ns == 0 {
        return corrupt("forest has no subtrees".into());
    }
    let mut referenced = vec![0u32; ns];

    for t in 0..h.num_trees() {
        let range = h.tree_subtrees(t);
        if range.is_empty() {
            return corrupt(format!("tree {t} owns no subtrees"));
        }
        for s in range.clone() {
            let base = h.subtree_base(s) as usize;
            let size = h.subtree_size(s);
            if size == 0 || (size + 1) & size != 0 {
                return corrupt(format!("subtree {s} size {size} is not 2^d - 1"));
            }
            let depth = h.subtree_depth(s);
            let cap = if s == range.start {
                h.config().root_subtree_depth
            } else {
                h.config().subtree_depth
            };
            if depth > cap as u32 {
                return corrupt(format!("subtree {s} depth {depth} exceeds cap {cap}"));
            }

            // Connection block shape.
            let cstart = h.connection_offset()[s as usize] as usize;
            let cend = h.connection_offset()[s as usize + 1] as usize;
            let bottom_slots = (size as usize).div_ceil(2);
            if cend != cstart && cend - cstart != 2 * bottom_slots {
                return corrupt(format!(
                    "subtree {s}: {} connection entries, expected 0 or {}",
                    cend - cstart,
                    2 * bottom_slots
                ));
            }

            // Walk slots, checking reachability and connection discipline.
            let last_level_start = (size >> 1) as usize;
            let mut reachable = vec![false; size as usize];
            reachable[0] = true;
            for n in 0..size as usize {
                let f = h.feature_id()[base + n];
                if f == PAD_FEATURE && reachable[n] {
                    return corrupt(format!("subtree {s}: pad slot {n} is reachable"));
                }
                if f != PAD_FEATURE && !reachable[n] {
                    return corrupt(format!("subtree {s}: real slot {n} is unreachable"));
                }
                let is_inner = f >= 0;
                if is_inner && reachable[n] && n < last_level_start {
                    reachable[2 * n + 1] = true;
                    reachable[2 * n + 2] = true;
                }
                if n >= last_level_start {
                    let p = n - last_level_start;
                    let conn = |side: usize| -> Option<u32> {
                        if cend == cstart {
                            None
                        } else {
                            Some(h.subtree_connection()[cstart + 2 * p + side])
                        }
                    };
                    if is_inner && reachable[n] {
                        for side in 0..2 {
                            match conn(side) {
                                Some(c) if c != NULL_SUBTREE => {
                                    if !range.contains(&c) {
                                        return corrupt(format!(
                                            "subtree {s}: connection {c} escapes tree {t}"
                                        ));
                                    }
                                    if c <= s {
                                        return corrupt(format!(
                                            "subtree {s}: backward connection {c}"
                                        ));
                                    }
                                    referenced[c as usize] += 1;
                                }
                                _ => {
                                    return corrupt(format!(
                                        "subtree {s}: inner bottom slot {n} missing connection"
                                    ))
                                }
                            }
                        }
                    } else {
                        for side in 0..2 {
                            if let Some(c) = conn(side) {
                                if c != NULL_SUBTREE {
                                    return corrupt(format!(
                                        "subtree {s}: non-inner slot {n} has connection {c}"
                                    ));
                                }
                            }
                        }
                    }
                } else if f == LEAF_FEATURE || f == PAD_FEATURE {
                    // Children slots (in range) must be pads.
                    for c in [2 * n + 1, 2 * n + 2] {
                        if c < size as usize && h.feature_id()[base + c] != PAD_FEATURE {
                            return corrupt(format!(
                                "subtree {s}: slot {n} is terminal but child {c} is real"
                            ));
                        }
                    }
                }
            }
        }
        // Exactly-once reference check within this tree.
        for s in range.clone() {
            let expected = u32::from(s != range.start);
            if referenced[s as usize] != expected {
                return corrupt(format!(
                    "subtree {s} referenced {} times, expected {expected}",
                    referenced[s as usize]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::builder::{build_forest, build_tree};
    use crate::hier::HierConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfx_forest::{DecisionTree, RandomForest};

    fn random_hier(seed: u64, sd: u8, rsd: u8) -> HierForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees: Vec<DecisionTree> =
            (0..4).map(|_| DecisionTree::random(&mut rng, 9, 6, 2, 0.25)).collect();
        let forest = RandomForest::from_trees(trees, 6, 2).unwrap();
        build_forest(&forest, HierConfig::with_root(sd, rsd)).unwrap()
    }

    #[test]
    fn built_layouts_validate() {
        for seed in 0..8 {
            for (sd, rsd) in [(1, 1), (2, 2), (3, 6), (4, 8), (8, 8)] {
                let h = random_hier(seed, sd, rsd);
                validate_hier(&h).unwrap_or_else(|e| panic!("seed {seed} sd {sd} rsd {rsd}: {e}"));
            }
        }
    }

    #[test]
    fn detects_backward_connection() {
        let mut h = random_hier(1, 2, 2);
        // Find any non-null connection and point it backwards at subtree 0.
        if let Some(c) = h.subtree_connection.iter_mut().find(|c| **c != NULL_SUBTREE) {
            *c = 0;
            assert!(validate_hier(&h).is_err());
        } else {
            panic!("fixture has no connections; pick a deeper tree");
        }
    }

    #[test]
    fn detects_null_on_inner_bottom_slot() {
        let mut h = random_hier(2, 2, 2);
        let pos = h
            .subtree_connection
            .iter()
            .position(|&c| c != NULL_SUBTREE)
            .expect("fixture has connections");
        h.subtree_connection[pos] = NULL_SUBTREE;
        assert!(validate_hier(&h).is_err());
    }

    #[test]
    fn detects_corrupt_slot_size() {
        let mut h = random_hier(3, 3, 3);
        // Shift one interior node offset so a subtree's size is no longer 2^d - 1.
        let mid = h.subtree_node_offset.len() / 2;
        h.subtree_node_offset[mid] += 1;
        assert!(validate_hier(&h).is_err());
    }

    #[test]
    fn detects_reachable_pad() {
        // Tree: root inner with two leaves, sd 2 -> 3 slots, no pads.
        // Corrupt a leaf into a pad: now a reachable slot is a pad.
        let tree = DecisionTree::from_nodes(vec![
            rfx_forest::Node::Inner { feature: 0, threshold: 0.5, left: 1, right: 2 },
            rfx_forest::Node::Leaf { label: 0 },
            rfx_forest::Node::Leaf { label: 1 },
        ])
        .unwrap();
        let mut h = build_tree(&tree, 1, 2, HierConfig::uniform(2)).unwrap();
        validate_hier(&h).unwrap();
        h.feature_id[1] = PAD_FEATURE;
        assert!(validate_hier(&h).is_err());
    }
}
