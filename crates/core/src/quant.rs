//! Quantized & compressed forest layouts (ROADMAP item 1).
//!
//! The paper's FPGA design keeps whole trees resident in on-chip BRAM and
//! compares with integer-only comparators; the f32 layouts in [`crate::fil`]
//! and [`crate::csr`] blow past the shard budgets long before the paper's
//! forest sizes. This module shrinks node records two ways:
//!
//! 1. **Threshold quantization** — thresholds are snapped to a per-feature
//!    affine grid `g(l) = offset + l·scale` and stored as `u8`/`u16` grid
//!    levels ([`QuantLevel`]). The grid function [`ThresholdQuantizer::dequantize`]
//!    is the *single* place a level becomes an `f32`, so traversing a
//!    quantized layout is bit-identical to traversing the "snapped" forest
//!    produced by [`ThresholdQuantizer::snap_forest`] — exact argmax on the
//!    quantized grid, by construction. Accuracy loss vs the original f32
//!    forest is bounded by the committed epsilons
//!    ([`MAX_ACCURACY_DELTA_U8`], [`MAX_ACCURACY_DELTA_U16`]), asserted on
//!    the accuracy-profile datasets in CI.
//! 2. **Packed narrow nodes** — feature index, leaf flag, leaf label, and
//!    child offset are bitfield-packed into one word per node
//!    ([`QFilForest`]: `u32` meta + level; [`QCsrForest`]: `u16` meta +
//!    level), replacing the 12 B FIL record / 6 B-plus-padding CSR
//!    attribute pair.
//!
//! The integer-only comparator path (`predict_tree_quantized`) mirrors the
//! FPGA datapath: queries are pre-mapped to grid *ranks*
//! ([`ThresholdQuantizer::quantize_row`], where `rank(x) = #{l : g(l) ≤ x}`)
//! and traversal compares ranks. Because f32 rounding is order-preserving,
//! the grid is monotone nondecreasing in `l`, the rank is computed by exact
//! binary search, and `rank(x) > l ⇔ x ≥ g(l)` — the integer path takes
//! exactly the same branches as the f32 path.

use crate::footprint::LayoutFootprint;
use crate::{Label, LayoutError};
use rfx_forest::{DecisionTree, Node, RandomForest};

/// Committed bound on `|accuracy(f32 forest) − accuracy(u8-quantized)|`
/// over the accuracy-profile datasets. Enforced by
/// `tests/accuracy_profiles.rs` and the `quant_bench` harness.
pub const MAX_ACCURACY_DELTA_U8: f64 = 0.02;

/// Committed bound on the u16 accuracy delta (see [`MAX_ACCURACY_DELTA_U8`]).
pub const MAX_ACCURACY_DELTA_U16: f64 = 0.005;

/// A storable threshold grid level: `u8` (256 levels) or `u16` (65 536).
pub trait QuantLevel: Copy + Send + Sync + 'static {
    /// Number of representable grid levels.
    const LEVELS: u32;
    /// Tag used in bench output and error messages.
    const NAME: &'static str;
    /// Bytes per stored threshold.
    const BYTES: usize;
    /// Narrowing store (caller guarantees `level < LEVELS`).
    fn from_level(level: u32) -> Self;
    /// Widening load.
    fn level(self) -> u32;
}

impl QuantLevel for u8 {
    const LEVELS: u32 = 1 << 8;
    const NAME: &'static str = "u8";
    const BYTES: usize = 1;
    #[inline]
    fn from_level(level: u32) -> Self {
        debug_assert!(level < Self::LEVELS);
        level as u8
    }
    #[inline]
    fn level(self) -> u32 {
        self as u32
    }
}

impl QuantLevel for u16 {
    const LEVELS: u32 = 1 << 16;
    const NAME: &'static str = "u16";
    const BYTES: usize = 2;
    #[inline]
    fn from_level(level: u32) -> Self {
        debug_assert!(level < Self::LEVELS);
        level as u16
    }
    #[inline]
    fn level(self) -> u32 {
        self as u32
    }
}

/// Per-feature affine grid parameters: grid point `l` is
/// `offset + (l as f32) * scale`, evaluated in f32.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParam {
    /// Grid origin (the smallest threshold seen on this feature).
    pub offset: f32,
    /// Grid step; `0.0` when the feature has at most one distinct
    /// threshold (the grid degenerates to a single point).
    pub scale: f32,
}

/// Bytes one [`QuantParam`] occupies in the resident layout.
pub const QUANT_PARAM_BYTES: usize = 8;

/// Per-feature monotone threshold quantizer fitted to one forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdQuantizer {
    params: Vec<QuantParam>,
    levels: u32,
}

impl ThresholdQuantizer {
    /// Fits a grid with `levels` points per feature to the thresholds of
    /// `forest`. Features never used by an inner node get a degenerate
    /// `(0, 0)` grid that is never consulted during traversal.
    pub fn fit(forest: &RandomForest, levels: u32) -> Self {
        assert!(levels >= 2, "need at least two grid levels");
        let nf = forest.num_features();
        let mut lo = vec![f32::INFINITY; nf];
        let mut hi = vec![f32::NEG_INFINITY; nf];
        for tree in forest.trees() {
            for node in tree.nodes() {
                if let Node::Inner { feature, threshold, .. } = *node {
                    let f = feature as usize;
                    lo[f] = lo[f].min(threshold);
                    hi[f] = hi[f].max(threshold);
                }
            }
        }
        let params = (0..nf)
            .map(|f| {
                if lo[f] > hi[f] {
                    QuantParam { offset: 0.0, scale: 0.0 }
                } else {
                    // f64 intermediate keeps the step exact-ish; the cast
                    // back to f32 is absorbed by the round-trip bound.
                    let scale = ((hi[f] as f64 - lo[f] as f64) / f64::from(levels - 1)) as f32;
                    QuantParam { offset: lo[f], scale }
                }
            })
            .collect();
        Self { params, levels }
    }

    /// Convenience: fit for a specific level type.
    pub fn fit_for<T: QuantLevel>(forest: &RandomForest) -> Self {
        Self::fit(forest, T::LEVELS)
    }

    /// Grid levels per feature.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Query width the quantizer was fitted for.
    pub fn num_features(&self) -> usize {
        self.params.len()
    }

    /// Grid parameters of one feature.
    pub fn param(&self, feature: usize) -> QuantParam {
        self.params[feature]
    }

    /// The canonical grid function — the **only** place a level becomes an
    /// `f32`. Every layout and the snapped oracle forest call this, which
    /// is what makes quantized traversal bit-exact vs the snapped forest.
    #[inline]
    pub fn dequantize(&self, feature: usize, level: u32) -> f32 {
        let p = self.params[feature];
        p.offset + level as f32 * p.scale
    }

    /// Nearest grid level for threshold `t` on `feature`.
    pub fn quantize(&self, feature: usize, t: f32) -> u32 {
        let p = self.params[feature];
        if p.scale == 0.0 {
            return 0;
        }
        let l = ((f64::from(t) - f64::from(p.offset)) / f64::from(p.scale)).round();
        (l.max(0.0) as u32).min(self.levels - 1)
    }

    /// Exact grid rank of a raw query value: `#{l ∈ 0..levels : g(l) ≤ x}`.
    ///
    /// The f32 grid is monotone nondecreasing in `l` (exact grid points are
    /// increasing and f32 rounding is order-preserving), so `g(l) ≤ x` holds
    /// on a prefix of levels and binary search finds the boundary exactly.
    /// Consequently `rank(x) > l ⇔ x ≥ g(l)` with **no** approximation, and
    /// integer-rank traversal branches identically to the f32 path. NaN
    /// queries rank 0, matching `x ≥ g(l)` being false for NaN.
    pub fn grid_rank(&self, feature: usize, x: f32) -> u32 {
        let p = self.params[feature];
        if p.scale == 0.0 {
            return if x >= p.offset { self.levels } else { 0 };
        }
        let (mut lo, mut hi) = (0u32, self.levels);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.dequantize(feature, mid) <= x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Maps a raw query row to grid ranks, the integer-only comparator
    /// input (the FPGA front half: one binary search per feature, then the
    /// whole forest traverses without touching floats).
    pub fn quantize_row(&self, query: &[f32]) -> Vec<u32> {
        (0..self.params.len().min(query.len())).map(|f| self.grid_rank(f, query[f])).collect()
    }

    /// The f32 forest with every threshold snapped to its grid point —
    /// the oracle that quantized layouts match **bit-identically**.
    pub fn snap_forest(&self, forest: &RandomForest) -> RandomForest {
        let trees = forest
            .trees()
            .iter()
            .map(|tree| {
                let nodes = tree
                    .nodes()
                    .iter()
                    .map(|node| match *node {
                        Node::Leaf { label } => Node::Leaf { label },
                        Node::Inner { feature, threshold, left, right } => Node::Inner {
                            feature,
                            threshold: self.dequantize(
                                feature as usize,
                                self.quantize(feature as usize, threshold),
                            ),
                            left,
                            right,
                        },
                    })
                    .collect();
                DecisionTree::from_nodes(nodes).expect("snapping preserves structure")
            })
            .collect();
        RandomForest::from_trees(trees, forest.num_features(), forest.num_classes())
            .expect("snapping preserves shape")
    }

    /// Bytes the per-feature parameter table occupies at inference time.
    pub fn table_bytes(&self) -> usize {
        self.params.len() * QUANT_PARAM_BYTES
    }
}

// --- QFil: packed FIL-style layout ----------------------------------------

/// Bits of the QFil feature field.
pub const QFIL_FEATURE_BITS: u32 = 10;
/// Maximum query width a [`QFilForest`] can encode.
pub const QFIL_MAX_FEATURES: usize = 1 << QFIL_FEATURE_BITS;
/// Maximum nodes per tree (21-bit tree-local child index).
pub const QFIL_MAX_TREE_NODES: usize = 1 << (31 - QFIL_FEATURE_BITS);
/// Maximum class label (31-bit leaf payload).
pub const QFIL_MAX_LABEL: u32 = (1 << 31) - 1;

pub(crate) const QFIL_FEATURE_MASK: u32 = (QFIL_MAX_FEATURES as u32) - 1;

/// One packed QFil meta word.
///
/// * leaf:  `label << 1 | 1`
/// * inner: `left_child << 11 | feature << 1` (leaf bit 0 clear); the
///   right child is `left_child + 1` (FIL sibling adjacency), and the
///   threshold level lives in the parallel `qvalue` array.
#[inline]
pub(crate) fn qfil_pack_inner(feature: u32, left_child: u32) -> u32 {
    (left_child << (QFIL_FEATURE_BITS + 1)) | (feature << 1)
}

#[inline]
pub(crate) fn qfil_pack_leaf(label: u32) -> u32 {
    (label << 1) | 1
}

/// FIL-style quantized forest: BFS node order, sibling adjacency
/// (`right = left + 1`), one meta word + one grid level per node.
///
/// Node cost: `4 + T::BYTES` bytes (5 B at u8) vs the 12 B f32
/// [`crate::fil::FilNode`].
#[derive(Debug, Clone, PartialEq)]
pub struct QFilForest<T: QuantLevel> {
    meta: Vec<u32>,
    qvalue: Vec<T>,
    /// Node base of tree `t` (len = num_trees + 1).
    tree_offset: Vec<u32>,
    quantizer: ThresholdQuantizer,
    num_classes: u32,
    num_features: usize,
}

impl<T: QuantLevel> QFilForest<T> {
    /// Quantizes and packs `forest`. Fails with [`LayoutError::BadConfig`]
    /// when the forest exceeds the bitfield budgets (`num_features` >
    /// [`QFIL_MAX_FEATURES`], a tree wider than [`QFIL_MAX_TREE_NODES`],
    /// or a label above [`QFIL_MAX_LABEL`]).
    pub fn build(forest: &RandomForest) -> Result<Self, LayoutError> {
        if forest.num_features() > QFIL_MAX_FEATURES {
            return Err(LayoutError::BadConfig {
                detail: format!(
                    "qfil-{} feature field is {} bits; forest has {} features (max {})",
                    T::NAME,
                    QFIL_FEATURE_BITS,
                    forest.num_features(),
                    QFIL_MAX_FEATURES
                ),
            });
        }
        if forest.num_classes().saturating_sub(1) > QFIL_MAX_LABEL {
            return Err(LayoutError::BadConfig {
                detail: format!(
                    "qfil-{} leaf payload is 31 bits; forest has {} classes",
                    T::NAME,
                    forest.num_classes()
                ),
            });
        }
        let quantizer = ThresholdQuantizer::fit(forest, T::LEVELS);
        let mut meta = Vec::with_capacity(forest.total_nodes());
        let mut qvalue = Vec::with_capacity(forest.total_nodes());
        let mut tree_offset = Vec::with_capacity(forest.num_trees() + 1);
        for (t, tree) in forest.trees().iter().enumerate() {
            if tree.num_nodes() > QFIL_MAX_TREE_NODES {
                return Err(LayoutError::BadConfig {
                    detail: format!(
                        "qfil-{} child field addresses {} nodes; tree {t} has {}",
                        T::NAME,
                        QFIL_MAX_TREE_NODES,
                        tree.num_nodes()
                    ),
                });
            }
            tree_offset.push(meta.len() as u32);
            append_tree_packed(tree, &quantizer, &mut meta, &mut qvalue);
        }
        tree_offset.push(meta.len() as u32);
        Ok(Self {
            meta,
            qvalue,
            tree_offset,
            quantizer,
            num_classes: forest.num_classes(),
            num_features: forest.num_features(),
        })
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.tree_offset.len() - 1
    }

    /// Number of classes voted over.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Query width expected by the traversals.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total node count across trees.
    pub fn total_nodes(&self) -> usize {
        self.meta.len()
    }

    /// The fitted grid.
    pub fn quantizer(&self) -> &ThresholdQuantizer {
        &self.quantizer
    }

    /// Classifies `query` with tree `t` on the f32 path: thresholds are
    /// reconstructed through [`ThresholdQuantizer::dequantize`], so the
    /// branch taken at every node equals the snapped forest's.
    pub fn predict_tree(&self, t: usize, query: &[f32]) -> Label {
        let base = self.tree_offset[t] as usize;
        let mut n = 0usize;
        loop {
            let m = self.meta[base + n];
            if m & 1 == 1 {
                return m >> 1;
            }
            let f = ((m >> 1) & QFIL_FEATURE_MASK) as usize;
            let thr = self.quantizer.dequantize(f, self.qvalue[base + n].level());
            let go_right = query[f] >= thr;
            n = (m >> (QFIL_FEATURE_BITS + 1)) as usize + usize::from(go_right);
        }
    }

    /// Integer-only traversal over a pre-ranked query
    /// ([`ThresholdQuantizer::quantize_row`]): `rank > level ⇔ x ≥ g(level)`,
    /// so this takes exactly the branches of [`Self::predict_tree`]. This is
    /// the functional reference for the FPGA integer comparator datapath.
    pub fn predict_tree_quantized(&self, t: usize, qrow: &[u32]) -> Label {
        let base = self.tree_offset[t] as usize;
        let mut n = 0usize;
        loop {
            let m = self.meta[base + n];
            if m & 1 == 1 {
                return m >> 1;
            }
            let f = ((m >> 1) & QFIL_FEATURE_MASK) as usize;
            let go_right = qrow[f] > self.qvalue[base + n].level();
            n = (m >> (QFIL_FEATURE_BITS + 1)) as usize + usize::from(go_right);
        }
    }

    /// Majority-vote classification of one query.
    pub fn predict(&self, query: &[f32]) -> Label {
        let mut votes = vec![0u32; self.num_classes as usize];
        for t in 0..self.num_trees() {
            votes[self.predict_tree(t, query) as usize] += 1;
        }
        crate::majority(&votes)
    }

    /// Classifies like [`QFilForest::predict_tree`] while reporting each
    /// simulated memory fetch to `sink`. The attribute region lays the
    /// packed `meta` words (4 B/node) then the quantized levels
    /// (`T::BYTES`/node) back to back — `4 + T::BYTES` attribute bytes
    /// per inner node, the compression the footprint matrix reports.
    /// Leaves read only their meta word, exactly like the untraced walk.
    pub fn predict_tree_traced(
        &self,
        t: usize,
        query: &[f32],
        sink: &mut dyn crate::memprobe::FetchSink,
    ) -> Label {
        let base = self.tree_offset[t] as usize;
        let qvalue_base = (self.meta.len() * 4) as u64;
        let mut n = 0usize;
        loop {
            let g = base + n;
            sink.attribute((g * 4) as u64, 4);
            let m = self.meta[g];
            if m & 1 == 1 {
                return m >> 1;
            }
            sink.attribute(qvalue_base + (g * T::BYTES) as u64, T::BYTES as u32);
            let f = ((m >> 1) & QFIL_FEATURE_MASK) as usize;
            let thr = self.quantizer.dequantize(f, self.qvalue[g].level());
            sink.query(f as u32);
            let go_right = query[f] >= thr;
            n = (m >> (QFIL_FEATURE_BITS + 1)) as usize + usize::from(go_right);
        }
    }

    /// Bytes actually resident: packed meta + levels as attributes, tree
    /// offsets plus the quantizer's parameter table as index overhead.
    pub fn footprint(&self) -> LayoutFootprint {
        LayoutFootprint {
            attribute_bytes: self.meta.len() * (4 + T::BYTES),
            topology_bytes: 0, // topology is embedded in the meta words
            index_bytes: self.tree_offset.len() * 4 + self.quantizer.table_bytes(),
        }
    }
}

/// Re-emits one tree in BFS order (sibling pairs adjacent) in packed form.
fn append_tree_packed<T: QuantLevel>(
    tree: &DecisionTree,
    quantizer: &ThresholdQuantizer,
    meta: &mut Vec<u32>,
    qvalue: &mut Vec<T>,
) {
    let base = meta.len();
    let mut order: Vec<u32> = Vec::with_capacity(tree.num_nodes());
    let mut new_id = vec![u32::MAX; tree.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0u32);
    while let Some(id) = queue.pop_front() {
        new_id[id as usize] = order.len() as u32;
        order.push(id);
        if let Node::Inner { left, right, .. } = tree.nodes()[id as usize] {
            queue.push_back(left);
            queue.push_back(right);
        }
    }
    for &old in &order {
        match tree.nodes()[old as usize] {
            Node::Leaf { label } => {
                meta.push(qfil_pack_leaf(label));
                qvalue.push(T::from_level(0));
            }
            Node::Inner { feature, threshold, left, .. } => {
                let f = feature as usize;
                meta.push(qfil_pack_inner(feature as u32, new_id[left as usize]));
                qvalue.push(T::from_level(quantizer.quantize(f, threshold)));
            }
        }
    }
    debug_assert_eq!(meta.len() - base, tree.num_nodes());
}

// --- QCsr: packed CSR-style layout ----------------------------------------

/// Maximum query width a [`QCsrForest`] can encode (15-bit feature field).
pub const QCSR_MAX_FEATURES: usize = 1 << 15;
/// Maximum class label (15-bit leaf payload).
pub const QCSR_MAX_LABEL: u32 = (1 << 15) - 1;

const QCSR_LEAF_BIT: u16 = 1 << 15;

/// CSR-style quantized forest: source node order, explicit child pairs,
/// one `u16` meta word (leaf bit + feature/label) + one grid level per
/// node. Attribute cost: `2 + T::BYTES` bytes per node vs CSR's 6.
#[derive(Debug, Clone, PartialEq)]
pub struct QCsrForest<T: QuantLevel> {
    /// `leaf_bit | feature` for inner nodes, `leaf_bit | label` for leaves.
    meta: Vec<u16>,
    qvalue: Vec<T>,
    /// Start of each node's children within `children_arr` (0 for leaves).
    children_arr_idx: Vec<u32>,
    /// Child node ids, two consecutive entries per inner node (tree-local).
    children_arr: Vec<u32>,
    /// Node base of tree `t` (len = num_trees + 1).
    tree_node_offset: Vec<u32>,
    /// `children_arr` base of tree `t` (len = num_trees + 1).
    tree_child_offset: Vec<u32>,
    quantizer: ThresholdQuantizer,
    num_classes: u32,
    num_features: usize,
}

impl<T: QuantLevel> QCsrForest<T> {
    /// Quantizes and packs `forest`. Fails with [`LayoutError::BadConfig`]
    /// when `num_features` > [`QCSR_MAX_FEATURES`] or a label exceeds
    /// [`QCSR_MAX_LABEL`].
    pub fn build(forest: &RandomForest) -> Result<Self, LayoutError> {
        if forest.num_features() > QCSR_MAX_FEATURES {
            return Err(LayoutError::BadConfig {
                detail: format!(
                    "qcsr-{} feature field is 15 bits; forest has {} features (max {})",
                    T::NAME,
                    forest.num_features(),
                    QCSR_MAX_FEATURES
                ),
            });
        }
        if forest.num_classes().saturating_sub(1) > QCSR_MAX_LABEL {
            return Err(LayoutError::BadConfig {
                detail: format!(
                    "qcsr-{} leaf payload is 15 bits; forest has {} classes",
                    T::NAME,
                    forest.num_classes()
                ),
            });
        }
        let quantizer = ThresholdQuantizer::fit(forest, T::LEVELS);
        let total_nodes = forest.total_nodes();
        let mut meta = Vec::with_capacity(total_nodes);
        let mut qvalue = Vec::with_capacity(total_nodes);
        let mut children_arr_idx = Vec::with_capacity(total_nodes);
        let mut children_arr = Vec::new();
        let mut tree_node_offset = Vec::with_capacity(forest.num_trees() + 1);
        let mut tree_child_offset = Vec::with_capacity(forest.num_trees() + 1);
        for tree in forest.trees() {
            tree_node_offset.push(meta.len() as u32);
            tree_child_offset.push(children_arr.len() as u32);
            let child_base = children_arr.len() as u32;
            for node in tree.nodes() {
                match *node {
                    Node::Leaf { label } => {
                        meta.push(QCSR_LEAF_BIT | label as u16);
                        qvalue.push(T::from_level(0));
                        children_arr_idx.push(0);
                    }
                    Node::Inner { feature, threshold, left, right } => {
                        meta.push(feature);
                        qvalue.push(T::from_level(quantizer.quantize(feature as usize, threshold)));
                        children_arr_idx.push(children_arr.len() as u32 - child_base);
                        children_arr.push(left);
                        children_arr.push(right);
                    }
                }
            }
        }
        tree_node_offset.push(meta.len() as u32);
        tree_child_offset.push(children_arr.len() as u32);
        Ok(Self {
            meta,
            qvalue,
            children_arr_idx,
            children_arr,
            tree_node_offset,
            tree_child_offset,
            quantizer,
            num_classes: forest.num_classes(),
            num_features: forest.num_features(),
        })
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.tree_node_offset.len() - 1
    }

    /// Number of classes voted over.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Query width expected by the traversals.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total node count across trees.
    pub fn total_nodes(&self) -> usize {
        self.meta.len()
    }

    /// The fitted grid.
    pub fn quantizer(&self) -> &ThresholdQuantizer {
        &self.quantizer
    }

    /// Classifies `query` with tree `t` on the f32 path (same branch
    /// decisions as the snapped forest; see [`QFilForest::predict_tree`]).
    pub fn predict_tree(&self, t: usize, query: &[f32]) -> Label {
        let node_base = self.tree_node_offset[t] as usize;
        let child_base = self.tree_child_offset[t] as usize;
        let mut n = 0usize;
        loop {
            let m = self.meta[node_base + n];
            if m & QCSR_LEAF_BIT != 0 {
                return u32::from(m & !QCSR_LEAF_BIT);
            }
            let f = m as usize;
            let thr = self.quantizer.dequantize(f, self.qvalue[node_base + n].level());
            let idx = self.children_arr_idx[node_base + n] as usize;
            let go_left = query[f] < thr;
            n = self.children_arr[child_base + idx + usize::from(!go_left)] as usize;
        }
    }

    /// Integer-only traversal over a pre-ranked query:
    /// `rank ≤ level ⇔ x < g(level)` (see
    /// [`QFilForest::predict_tree_quantized`]).
    pub fn predict_tree_quantized(&self, t: usize, qrow: &[u32]) -> Label {
        let node_base = self.tree_node_offset[t] as usize;
        let child_base = self.tree_child_offset[t] as usize;
        let mut n = 0usize;
        loop {
            let m = self.meta[node_base + n];
            if m & QCSR_LEAF_BIT != 0 {
                return u32::from(m & !QCSR_LEAF_BIT);
            }
            let f = m as usize;
            let idx = self.children_arr_idx[node_base + n] as usize;
            let go_left = qrow[f] <= self.qvalue[node_base + n].level();
            n = self.children_arr[child_base + idx + usize::from(!go_left)] as usize;
        }
    }

    /// Majority-vote classification of one query.
    pub fn predict(&self, query: &[f32]) -> Label {
        let mut votes = vec![0u32; self.num_classes as usize];
        for t in 0..self.num_trees() {
            votes[self.predict_tree(t, query) as usize] += 1;
        }
        crate::majority(&votes)
    }

    /// Classifies like [`QCsrForest::predict_tree`] while reporting each
    /// simulated memory fetch to `sink`. Attribute region: `meta`
    /// (2 B/node) then quantized levels (`T::BYTES`/node); topology
    /// region: `children_arr_idx` then `children_arr` (4 B each), as in
    /// [`crate::CsrForest::predict_tree_traced`].
    pub fn predict_tree_traced(
        &self,
        t: usize,
        query: &[f32],
        sink: &mut dyn crate::memprobe::FetchSink,
    ) -> Label {
        let node_base = self.tree_node_offset[t] as usize;
        let child_base = self.tree_child_offset[t] as usize;
        let qvalue_base = (self.meta.len() * 2) as u64;
        let children_base = (self.children_arr_idx.len() * 4) as u64;
        let mut n = 0usize;
        loop {
            let g = node_base + n;
            sink.attribute((g * 2) as u64, 2);
            let m = self.meta[g];
            if m & QCSR_LEAF_BIT != 0 {
                return u32::from(m & !QCSR_LEAF_BIT);
            }
            sink.attribute(qvalue_base + (g * T::BYTES) as u64, T::BYTES as u32);
            let f = m as usize;
            let thr = self.quantizer.dequantize(f, self.qvalue[g].level());
            sink.topology((g * 4) as u64, 4);
            let idx = self.children_arr_idx[g] as usize;
            sink.query(f as u32);
            let go_left = query[f] < thr;
            let slot = child_base + idx + usize::from(!go_left);
            sink.topology(children_base + (slot * 4) as u64, 4);
            n = self.children_arr[slot] as usize;
        }
    }

    /// Bytes actually resident (see [`QFilForest::footprint`]).
    pub fn footprint(&self) -> LayoutFootprint {
        LayoutFootprint {
            attribute_bytes: self.meta.len() * (2 + T::BYTES),
            topology_bytes: self.children_arr_idx.len() * 4 + self.children_arr.len() * 4,
            index_bytes: (self.tree_node_offset.len() + self.tree_child_offset.len()) * 4
                + self.quantizer.table_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fil::FilForest;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_forest(
        n_trees: usize,
        depth: usize,
        nf: usize,
        classes: u32,
        seed: u64,
    ) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees: Vec<DecisionTree> = (0..n_trees)
            .map(|_| DecisionTree::random(&mut rng, depth, nf as u16, classes, 0.3))
            .collect();
        RandomForest::from_trees(trees, nf, classes).unwrap()
    }

    #[test]
    fn grid_is_monotone_nondecreasing() {
        let forest = random_forest(5, 8, 7, 3, 11);
        let q = ThresholdQuantizer::fit_for::<u8>(&forest);
        for f in 0..7 {
            let mut prev = f32::NEG_INFINITY;
            for l in 0..u8::LEVELS {
                let g = q.dequantize(f, l);
                assert!(g >= prev, "feature {f} level {l}: {g} < {prev}");
                prev = g;
            }
        }
    }

    #[test]
    fn round_trip_is_within_half_a_step() {
        let forest = random_forest(8, 9, 5, 3, 23);
        let q = ThresholdQuantizer::fit_for::<u16>(&forest);
        for tree in forest.trees() {
            for node in tree.nodes() {
                if let Node::Inner { feature, threshold, .. } = *node {
                    let f = feature as usize;
                    let rt = q.dequantize(f, q.quantize(f, threshold));
                    let step = f64::from(q.param(f).scale);
                    let slop = (f64::from(threshold.abs()) + step * f64::from(u16::LEVELS))
                        * f64::from(f32::EPSILON)
                        * 4.0;
                    assert!(
                        (f64::from(rt) - f64::from(threshold)).abs() <= 0.5 * step + slop,
                        "feature {f}: {threshold} -> {rt} (step {step})"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_rank_agrees_with_f32_comparison() {
        // rank(x) > l  ⇔  x ≥ g(l): the exactness claim behind the
        // integer comparator path, checked exhaustively at u8.
        let forest = random_forest(6, 8, 4, 2, 31);
        let q = ThresholdQuantizer::fit_for::<u8>(&forest);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let f = rng.gen_range(0..4usize);
            // Mix of in-range, out-of-range, and exact grid points.
            let x = match rng.gen_range(0..3) {
                0 => rng.gen::<f32>() * 2.0 - 0.5,
                1 => q.dequantize(f, rng.gen_range(0..u8::LEVELS)),
                _ => rng.gen::<f32>() * 100.0 - 50.0,
            };
            let rank = q.grid_rank(f, x);
            for l in (0..u8::LEVELS).step_by(7) {
                assert_eq!(rank > l, x >= q.dequantize(f, l), "f={f} x={x} l={l}");
            }
        }
    }

    #[test]
    fn layouts_match_snapped_forest_exactly() {
        let forest = random_forest(10, 9, 7, 4, 42);
        let qfil = QFilForest::<u8>::build(&forest).unwrap();
        let qcsr = QCsrForest::<u8>::build(&forest).unwrap();
        let snapped = qfil.quantizer().snap_forest(&forest);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..400 {
            let qv: Vec<f32> = (0..7).map(|_| rng.gen::<f32>() * 1.5 - 0.25).collect();
            let want = snapped.predict(&qv);
            assert_eq!(qfil.predict(&qv), want);
            assert_eq!(qcsr.predict(&qv), want);
            for t in 0..forest.num_trees() {
                let tw = snapped.trees()[t].predict(&qv);
                assert_eq!(qfil.predict_tree(t, &qv), tw);
                assert_eq!(qcsr.predict_tree(t, &qv), tw);
            }
        }
    }

    #[test]
    fn traced_traversals_match_untraced_and_report_packed_widths() {
        use crate::memprobe::CountingSink;
        let forest = random_forest(6, 8, 7, 3, 13);
        let qfil = QFilForest::<u8>::build(&forest).unwrap();
        let qcsr = QCsrForest::<u8>::build(&forest).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let mut fil_sink = CountingSink::default();
        let mut csr_sink = CountingSink::default();
        let traversals = 150 * forest.num_trees() as u64;
        for _ in 0..150 {
            let qv: Vec<f32> = (0..7).map(|_| rng.gen::<f32>() * 1.5 - 0.25).collect();
            for t in 0..forest.num_trees() {
                assert_eq!(
                    qfil.predict_tree_traced(t, &qv, &mut fil_sink),
                    qfil.predict_tree(t, &qv)
                );
                assert_eq!(
                    qcsr.predict_tree_traced(t, &qv, &mut csr_sink),
                    qcsr.predict_tree(t, &qv)
                );
            }
        }
        // QFil: every visit reads the 4 B meta word; inner visits add a
        // 1 B quantized level. Topology is embedded in meta.
        let fil_inner = fil_sink.query_fetches;
        let fil_visits = fil_inner + traversals;
        assert_eq!(fil_sink.attribute_fetches, fil_visits + fil_inner);
        assert_eq!(fil_sink.attribute_bytes, fil_visits * 4 + fil_inner);
        assert_eq!(fil_sink.topology_fetches, 0);
        // QCsr: 2 B meta per visit + 1 B level per inner visit, plus
        // CSR's two 4 B topology reads per inner visit.
        let csr_inner = csr_sink.query_fetches;
        let csr_visits = csr_inner + traversals;
        assert_eq!(csr_sink.attribute_fetches, csr_visits + csr_inner);
        assert_eq!(csr_sink.attribute_bytes, csr_visits * 2 + csr_inner);
        assert_eq!(csr_sink.topology_fetches, csr_inner * 2);
        assert_eq!(csr_sink.topology_bytes, csr_inner * 8);
        // Both layouts walk the same snapped forest: identical visit counts.
        assert_eq!(fil_visits, csr_visits);
    }

    #[test]
    fn integer_path_matches_f32_path() {
        let forest = random_forest(9, 8, 6, 3, 5);
        let qfil = QFilForest::<u16>::build(&forest).unwrap();
        let qcsr = QCsrForest::<u16>::build(&forest).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let qv: Vec<f32> = (0..6).map(|_| rng.gen::<f32>() * 3.0 - 1.0).collect();
            let ranks = qfil.quantizer().quantize_row(&qv);
            for t in 0..forest.num_trees() {
                assert_eq!(qfil.predict_tree_quantized(t, &ranks), qfil.predict_tree(t, &qv));
                assert_eq!(qcsr.predict_tree_quantized(t, &ranks), qcsr.predict_tree(t, &qv));
            }
        }
    }

    #[test]
    fn u16_snapping_rarely_moves_predictions() {
        // Not an exactness property — just a sanity check that the u16
        // grid is fine enough that most predictions survive quantization.
        let forest = random_forest(12, 9, 7, 3, 77);
        let qfil = QFilForest::<u16>::build(&forest).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut moved = 0;
        for _ in 0..500 {
            let qv: Vec<f32> = (0..7).map(|_| rng.gen::<f32>()).collect();
            if qfil.predict(&qv) != forest.predict(&qv) {
                moved += 1;
            }
        }
        assert!(moved < 25, "u16 quantization moved {moved}/500 predictions");
    }

    #[test]
    fn feature_budget_is_enforced() {
        let mut rng = StdRng::seed_from_u64(1);
        let trees = vec![DecisionTree::random(&mut rng, 4, 2000, 2, 0.3)];
        let forest = RandomForest::from_trees(trees, 2000, 2).unwrap();
        assert!(matches!(QFilForest::<u8>::build(&forest), Err(LayoutError::BadConfig { .. })));
        // QCsr's 15-bit feature field still fits 2000 features.
        assert!(QCsrForest::<u8>::build(&forest).is_ok());
    }

    #[test]
    fn label_budget_is_enforced() {
        let forest = RandomForest::from_trees(vec![DecisionTree::leaf(40_000)], 3, 40_001).unwrap();
        assert!(matches!(QCsrForest::<u8>::build(&forest), Err(LayoutError::BadConfig { .. })));
        assert_eq!(QFilForest::<u8>::build(&forest).unwrap().predict(&[0.0; 3]), 40_000);
    }

    #[test]
    fn qfil_u8_is_under_half_the_f32_fil_footprint() {
        let forest = random_forest(10, 10, 8, 3, 21);
        let fil = FilForest::build(&forest).footprint();
        let qfil = QFilForest::<u8>::build(&forest).unwrap().footprint();
        assert!(
            (qfil.total() as f64) < 0.5 * fil.total() as f64,
            "qfil {} vs fil {}",
            qfil.total(),
            fil.total()
        );
        // 5 B per node at u8.
        let n = forest.total_nodes();
        assert_eq!(qfil.attribute_bytes, n * 5);
    }

    #[test]
    fn single_leaf_tree_works() {
        let forest = RandomForest::from_trees(vec![DecisionTree::leaf(2)], 4, 3).unwrap();
        let qfil = QFilForest::<u8>::build(&forest).unwrap();
        let qcsr = QCsrForest::<u16>::build(&forest).unwrap();
        assert_eq!(qfil.predict(&[0.0; 4]), 2);
        assert_eq!(qcsr.predict(&[0.0; 4]), 2);
        assert_eq!(qfil.predict_tree_quantized(0, &[0; 4]), 2);
    }

    #[test]
    fn meta_packing_round_trips() {
        let m = qfil_pack_inner(1023, (QFIL_MAX_TREE_NODES as u32) - 1);
        assert_eq!(m & 1, 0);
        assert_eq!((m >> 1) & QFIL_FEATURE_MASK, 1023);
        assert_eq!(m >> (QFIL_FEATURE_BITS + 1), (QFIL_MAX_TREE_NODES as u32) - 1);
        let l = qfil_pack_leaf(QFIL_MAX_LABEL);
        assert_eq!(l & 1, 1);
        assert_eq!(l >> 1, QFIL_MAX_LABEL);
    }
}
