//! Profile-guided forest packing (ROADMAP item 2, after Browne et al.'s
//! *Forest Packing*).
//!
//! The paper's thesis is that forest *layout*, not arithmetic, decides
//! inference speed; this module is the layout pass that acts on it. Given
//! a calibration [`FrequencyProfile`] (per-node visit counts from traced
//! traversals over a representative query sample), [`PackedFilForest`] /
//! [`PackedQFilForest`] re-emit a forest's FIL node stream so that
//!
//! 1. **trees are bin-packed into shards by measured bytes** — first-fit
//!    decreasing over each tree's byte cost in the target layout (the
//!    same per-tree byte figure [`LayoutFootprint::per_tree`] averages),
//!    against [`PackPlan::shard_budget_bytes`], instead of the uniform
//!    tree-count sharding of the unpacked layouts;
//! 2. **the first `L` levels of a shard's trees are interleaved** into a
//!    shared leading segment — all roots sit consecutively, then every
//!    tree's level-1 sibling pairs, and so on — so one cache line serves
//!    several trees' entry points at the top of every tile;
//! 3. **each tree's remaining nodes are emitted hot-first** in
//!    BFS-by-frequency order: the pending sibling pair with the highest
//!    calibration visit count is placed next, pushing cold subtrees
//!    out-of-line behind the hot paths.
//!
//! Sibling pairs are always emitted adjacently, so the FIL invariant
//! `right = left + 1` survives; child indices are *shard-local* (each
//! packed tree carries its shard's node base plus its own root slot),
//! which keeps the quantized variant inside the 21-bit
//! [`QFIL_MAX_TREE_NODES`](crate::quant::QFIL_MAX_TREE_NODES) child
//! budget per *shard*.
//!
//! Packing is oracle-invariant by construction: the set of (tree, node)
//! pairs a query visits is untouched — only their addresses move — and
//! tree order within the ensemble only permutes the vote multiset, which
//! majority voting cannot observe. The `pack_vs_reference` proptest
//! family in `rfx-kernels` pins this against `predict_reference` for
//! every vote policy and layout width.

use std::collections::BinaryHeap;

use rfx_forest::dataset::QueryView;
use rfx_forest::{Node, RandomForest};

use crate::fil::{FilNode, FIL_NODE_BYTES};
use crate::footprint::LayoutFootprint;
use crate::memprobe::FetchSink;
use crate::quant::{
    qfil_pack_inner, qfil_pack_leaf, QuantLevel, ThresholdQuantizer, QFIL_FEATURE_MASK,
    QFIL_MAX_FEATURES, QFIL_MAX_LABEL, QFIL_MAX_TREE_NODES,
};
use crate::{Label, LayoutError};

/// Deepest interleaved prefix a [`PackPlan`] may request: `2^16 - 1`
/// leading nodes per tree is already far past any cache-line sharing
/// benefit, and the cap keeps the validated plan trivially `Copy`.
pub const MAX_INTERLEAVE_LEVELS: u8 = 16;

/// Default interleaving depth: roots plus their child pairs. Two levels
/// put up to `3 × shard_trees` entry nodes back to back — at 12 B/node a
/// 64 B line then serves the top of ~5 trees — while deeper prefixes
/// mostly interleave nodes the profile would have kept hot anyway.
pub const DEFAULT_INTERLEAVE_LEVELS: u8 = 2;

/// Default byte budget per packed shard, matching the engine's L2-derived
/// shard sizing so auto-planned tiling and packed shard bounds agree.
pub const DEFAULT_SHARD_BUDGET_BYTES: usize = 512 << 10;

/// Why a [`PackPlan`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackError {
    /// `shard_budget_bytes` was zero — no tree fits in a 0-byte shard.
    ZeroShardBudget,
    /// `interleave_levels` exceeded [`MAX_INTERLEAVE_LEVELS`].
    InterleaveTooDeep,
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::ZeroShardBudget => write!(f, "pack plan: shard_budget_bytes must be > 0"),
            PackError::InterleaveTooDeep => {
                write!(f, "pack plan: interleave_levels must be <= {MAX_INTERLEAVE_LEVELS}")
            }
        }
    }
}

impl std::error::Error for PackError {}

/// Validated packing parameters: how deep to interleave and how many
/// bytes each shard may hold. `Copy` so it can ride inside `EnginePlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackPlan {
    interleave_levels: u8,
    shard_budget_bytes: usize,
}

impl Default for PackPlan {
    fn default() -> Self {
        Self {
            interleave_levels: DEFAULT_INTERLEAVE_LEVELS,
            shard_budget_bytes: DEFAULT_SHARD_BUDGET_BYTES,
        }
    }
}

impl PackPlan {
    /// Builds a plan, rejecting parameters the packer cannot honor.
    pub fn new(interleave_levels: u8, shard_budget_bytes: usize) -> Result<Self, PackError> {
        Self { interleave_levels, shard_budget_bytes }.validated()
    }

    /// Re-checks the invariants (used by `EnginePlanBuilder::build`).
    pub fn validated(self) -> Result<Self, PackError> {
        if self.shard_budget_bytes == 0 {
            return Err(PackError::ZeroShardBudget);
        }
        if self.interleave_levels > MAX_INTERLEAVE_LEVELS {
            return Err(PackError::InterleaveTooDeep);
        }
        Ok(self)
    }

    /// Returns the plan with `levels` interleaved leading tree levels.
    /// Deliberately unvalidated — validation happens at
    /// [`PackPlan::validated`] (or `EnginePlanBuilder::build`, which
    /// calls it), so a bad knob surfaces as a typed error there instead
    /// of a panic here.
    pub fn interleave(mut self, levels: u8) -> Self {
        self.interleave_levels = levels;
        self
    }

    /// Returns the plan with a `bytes` shard capacity (same deferred
    /// validation as [`PackPlan::interleave`]).
    pub fn budget(mut self, bytes: usize) -> Self {
        self.shard_budget_bytes = bytes;
        self
    }

    /// Number of leading tree levels interleaved across a shard
    /// (0 = lay trees back to back, 1 = roots only, 2 = roots + pairs).
    pub fn interleave_levels(&self) -> u8 {
        self.interleave_levels
    }

    /// Byte capacity of one packed shard; a tree larger than the budget
    /// gets a shard of its own.
    pub fn shard_budget_bytes(&self) -> usize {
        self.shard_budget_bytes
    }
}

/// Per-node visit counts from a calibration query set — the "profile" in
/// profile-guided packing. Counts are indexed `[tree][source node id]`.
///
/// The profile only steers *placement*; a stale or even adversarial
/// profile changes addresses, never predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyProfile {
    counts: Vec<Vec<u64>>,
    calibration_rows: u64,
}

impl FrequencyProfile {
    /// Replays every calibration row through every tree (the same walk
    /// [`crate::memprobe::FetchSink`]-traced traversals take) and counts
    /// node visits.
    pub fn collect<'a, Q: Into<QueryView<'a>>>(forest: &RandomForest, queries: Q) -> Self {
        let queries = queries.into();
        let mut counts: Vec<Vec<u64>> =
            forest.trees().iter().map(|t| vec![0u64; t.num_nodes()]).collect();
        for r in 0..queries.num_rows() {
            let q = queries.row(r);
            for (t, tree) in forest.trees().iter().enumerate() {
                let mut id = 0usize;
                loop {
                    counts[t][id] += 1;
                    match tree.nodes()[id] {
                        Node::Leaf { .. } => break,
                        Node::Inner { feature, threshold, left, right } => {
                            id = if q[feature as usize] < threshold {
                                left as usize
                            } else {
                                right as usize
                            };
                        }
                    }
                }
            }
        }
        Self { counts, calibration_rows: queries.num_rows() as u64 }
    }

    /// A profile with no signal: every count zero. Hot-first emission
    /// then degenerates to a deterministic BFS-like order (ties break on
    /// source node id), so packing without calibration data still yields
    /// the interleaving and byte bin-packing wins.
    pub fn uniform(forest: &RandomForest) -> Self {
        Self {
            counts: forest.trees().iter().map(|t| vec![0u64; t.num_nodes()]).collect(),
            calibration_rows: 0,
        }
    }

    /// Visit count of `node` in tree `t`.
    pub fn count(&self, t: usize, node: usize) -> u64 {
        self.counts[t][node]
    }

    /// How many calibration rows built this profile (0 for uniform).
    pub fn calibration_rows(&self) -> u64 {
        self.calibration_rows
    }

    fn matches(&self, forest: &RandomForest) -> Result<(), LayoutError> {
        if self.counts.len() != forest.num_trees()
            || self.counts.iter().zip(forest.trees()).any(|(c, t)| c.len() != t.num_nodes())
        {
            return Err(LayoutError::BadConfig {
                detail: format!(
                    "frequency profile shape ({} trees) does not match forest ({} trees)",
                    self.counts.len(),
                    forest.num_trees()
                ),
            });
        }
        Ok(())
    }
}

/// Layout skeleton shared by the f32 and quantized packed forests:
/// emission order, resolved shard-local children, and the tree/shard
/// directory. `slots[g] = (source tree, source node)` for global slot `g`.
struct PackLayout {
    slots: Vec<(u32, u32)>,
    /// Shard-local left-child slot per global slot (0 for leaves).
    left_child: Vec<u32>,
    /// Packed tree position -> source tree id (the tree permutation).
    tree_src: Vec<u32>,
    /// Packed tree position -> owning shard.
    tree_shard: Vec<u32>,
    /// Packed tree position -> shard-local root slot.
    tree_root: Vec<u32>,
    /// Global node base of each shard (len = shards + 1).
    shard_node_base: Vec<u32>,
    /// Cumulative packed-tree count per shard (len = shards + 1).
    shard_tree_bound: Vec<u32>,
}

/// Children of an inner node, or `None` for a leaf.
fn children(tree: &rfx_forest::DecisionTree, id: u32) -> Option<(u32, u32)> {
    match tree.nodes()[id as usize] {
        Node::Inner { left, right, .. } => Some((left, right)),
        Node::Leaf { .. } => None,
    }
}

/// Runs the three packing stages (byte bin-packing, interleaved leading
/// segment, hot-first remainder) for a layout costing `node_bytes` per
/// node. Pure topology — the callers materialize f32 or quantized nodes
/// from the returned slot order.
fn pack_layout(
    forest: &RandomForest,
    profile: &FrequencyProfile,
    plan: PackPlan,
    node_bytes: usize,
) -> Result<PackLayout, LayoutError> {
    profile.matches(forest)?;
    let plan = plan.validated().map_err(|e| LayoutError::BadConfig { detail: e.to_string() })?;
    let n_trees = forest.num_trees();
    let trees = forest.trees();

    // Stage 1: first-fit decreasing over measured per-tree bytes. An
    // oversized tree opens a shard of its own (and, being over budget,
    // admits no roommates).
    let tree_bytes: Vec<usize> = trees.iter().map(|t| t.num_nodes() * node_bytes).collect();
    let mut order: Vec<usize> = (0..n_trees).collect();
    order.sort_by(|&a, &b| tree_bytes[b].cmp(&tree_bytes[a]).then(a.cmp(&b)));
    let mut shards: Vec<Vec<usize>> = Vec::new();
    let mut fill: Vec<usize> = Vec::new();
    for &t in &order {
        match fill.iter().position(|&f| f + tree_bytes[t] <= plan.shard_budget_bytes()) {
            Some(s) => {
                shards[s].push(t);
                fill[s] += tree_bytes[t];
            }
            None => {
                shards.push(vec![t]);
                fill.push(tree_bytes[t]);
            }
        }
    }

    // Stages 2 + 3: emit each shard's node stream.
    let total_nodes = forest.total_nodes();
    let mut slots: Vec<(u32, u32)> = Vec::with_capacity(total_nodes);
    let mut slot_of: Vec<Vec<u32>> = trees.iter().map(|t| vec![u32::MAX; t.num_nodes()]).collect();
    let mut layout = PackLayout {
        slots: Vec::new(),
        left_child: Vec::new(),
        tree_src: Vec::with_capacity(n_trees),
        tree_shard: Vec::with_capacity(n_trees),
        tree_root: Vec::with_capacity(n_trees),
        shard_node_base: vec![0],
        shard_tree_bound: vec![0],
    };
    let levels = plan.interleave_levels() as usize;

    for (s, members) in shards.iter().enumerate() {
        let shard_base = slots.len();
        let mut emit = |slots: &mut Vec<(u32, u32)>, t: usize, id: u32| {
            slot_of[t][id as usize] = (slots.len() - shard_base) as u32;
            slots.push((t as u32, id));
        };

        // Interleaved leading segment: level-major across the shard's
        // trees. `frontier[i]` holds tree i's inner nodes of the level
        // just emitted, hot-first.
        let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); members.len()];
        if levels >= 1 {
            for (i, &t) in members.iter().enumerate() {
                emit(&mut slots, t, 0);
                if children(&trees[t], 0).is_some() {
                    frontier[i].push(0);
                }
            }
        }
        for _level in 1..levels {
            for (i, &t) in members.iter().enumerate() {
                let mut parents = std::mem::take(&mut frontier[i]);
                parents.sort_by_key(|&p| (std::cmp::Reverse(profile.count(t, p as usize)), p));
                for p in parents {
                    let (l, r) = children(&trees[t], p).expect("frontier holds inner nodes");
                    emit(&mut slots, t, l);
                    emit(&mut slots, t, r);
                    if children(&trees[t], l).is_some() {
                        frontier[i].push(l);
                    }
                    if children(&trees[t], r).is_some() {
                        frontier[i].push(r);
                    }
                }
            }
        }

        // Hot-first remainder, one tree at a time: the max-heap pops the
        // placed inner node with the hottest pending child pair (ties on
        // smaller source id, so a zero/uniform profile stays
        // deterministic) and emits its siblings adjacently.
        for (i, &t) in members.iter().enumerate() {
            if levels == 0 {
                emit(&mut slots, t, 0);
                if children(&trees[t], 0).is_some() {
                    frontier[i].push(0);
                }
            }
            let mut heap: BinaryHeap<(u64, std::cmp::Reverse<u32>)> = frontier[i]
                .iter()
                .map(|&p| (profile.count(t, p as usize), std::cmp::Reverse(p)))
                .collect();
            while let Some((_, std::cmp::Reverse(p))) = heap.pop() {
                let (l, r) = children(&trees[t], p).expect("heap holds inner nodes");
                emit(&mut slots, t, l);
                emit(&mut slots, t, r);
                if children(&trees[t], l).is_some() {
                    heap.push((profile.count(t, l as usize), std::cmp::Reverse(l)));
                }
                if children(&trees[t], r).is_some() {
                    heap.push((profile.count(t, r as usize), std::cmp::Reverse(r)));
                }
            }
        }

        // Resolve shard-local children now that the shard is complete.
        for &(t, id) in &slots[shard_base..] {
            let lc = match children(&trees[t as usize], id) {
                Some((l, _)) => slot_of[t as usize][l as usize],
                None => 0,
            };
            layout.left_child.push(lc);
        }
        for &t in members {
            layout.tree_src.push(t as u32);
            layout.tree_shard.push(s as u32);
            layout.tree_root.push(slot_of[t][0]);
        }
        layout.shard_node_base.push(slots.len() as u32);
        layout.shard_tree_bound.push(layout.tree_src.len() as u32);
    }

    debug_assert_eq!(slots.len(), total_nodes);
    layout.slots = slots;
    Ok(layout)
}

/// Profile-packed f32 FIL forest: 12 B [`FilNode`]s in hot-first,
/// shard-interleaved order. Bit-identical in prediction to the source
/// forest (it takes the same branch at every node); only addresses move.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFilForest {
    nodes: Vec<FilNode>,
    tree_src: Vec<u32>,
    tree_shard: Vec<u32>,
    tree_root: Vec<u32>,
    shard_node_base: Vec<u32>,
    shard_tree_bound: Vec<u32>,
    num_classes: u32,
    num_features: usize,
}

impl PackedFilForest {
    /// Packs `forest` under `plan`, steering placement with `profile`.
    pub fn build(
        forest: &RandomForest,
        profile: &FrequencyProfile,
        plan: PackPlan,
    ) -> Result<Self, LayoutError> {
        let layout = pack_layout(forest, profile, plan, FIL_NODE_BYTES)?;
        let trees = forest.trees();
        let mut nodes = Vec::with_capacity(layout.slots.len());
        for (g, &(t, id)) in layout.slots.iter().enumerate() {
            nodes.push(match trees[t as usize].nodes()[id as usize] {
                Node::Leaf { label } => FilNode { feature: -1, value: label as f32, left_child: 0 },
                Node::Inner { feature, threshold, .. } => FilNode {
                    feature: feature as i16,
                    value: threshold,
                    left_child: layout.left_child[g],
                },
            });
        }
        Ok(Self {
            nodes,
            tree_src: layout.tree_src,
            tree_shard: layout.tree_shard,
            tree_root: layout.tree_root,
            shard_node_base: layout.shard_node_base,
            shard_tree_bound: layout.shard_tree_bound,
            num_classes: forest.num_classes(),
            num_features: forest.num_features(),
        })
    }

    /// Number of trees (identical to the source forest's).
    pub fn num_trees(&self) -> usize {
        self.tree_src.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Query width.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of byte-packed shards.
    pub fn num_shards(&self) -> usize {
        self.shard_node_base.len() - 1
    }

    /// Source tree id voting at packed position `t` (the permutation the
    /// byte bin-packing applied; majority votes cannot observe it).
    pub fn tree_source(&self, t: usize) -> usize {
        self.tree_src[t] as usize
    }

    /// Cumulative packed-tree shard boundaries `[0, ..., num_trees]`,
    /// the byte-aware tiling the engine adopts over uniform tree counts.
    pub fn shard_tree_bounds(&self) -> Vec<usize> {
        self.shard_tree_bound.iter().map(|&b| b as usize).collect()
    }

    /// Classifies `query` with packed tree `t`. Same branches as the
    /// source tree, so the same label.
    pub fn predict_tree(&self, t: usize, query: &[f32]) -> Label {
        let base = self.shard_node_base[self.tree_shard[t] as usize] as usize;
        let mut n = self.tree_root[t] as usize;
        loop {
            let node = self.nodes[base + n];
            if node.feature < 0 {
                return node.value as Label;
            }
            let go_right = query[node.feature as usize] >= node.value;
            n = node.left_child as usize + usize::from(go_right);
        }
    }

    /// Majority-vote classification of one query.
    pub fn predict(&self, query: &[f32]) -> Label {
        let mut votes = vec![0u32; self.num_classes as usize];
        for t in 0..self.num_trees() {
            votes[self.predict_tree(t, query) as usize] += 1;
        }
        crate::majority(&votes)
    }

    /// Traced traversal reporting the *packed* addresses (global slot ×
    /// 12 B), so the memtrace cache model measures the new layout —
    /// this is what `pack_bench` compares against unpacked FIL.
    pub fn predict_tree_traced(&self, t: usize, query: &[f32], sink: &mut dyn FetchSink) -> Label {
        let base = self.shard_node_base[self.tree_shard[t] as usize] as usize;
        let mut n = self.tree_root[t] as usize;
        loop {
            sink.attribute(((base + n) * FIL_NODE_BYTES) as u64, FIL_NODE_BYTES as u32);
            let node = self.nodes[base + n];
            if node.feature < 0 {
                return node.value as Label;
            }
            sink.query(node.feature as u32);
            let go_right = query[node.feature as usize] >= node.value;
            n = node.left_child as usize + usize::from(go_right);
        }
    }

    /// Bytes resident: the node stream as attributes plus the tree/shard
    /// directory as index overhead.
    pub fn footprint(&self) -> LayoutFootprint {
        LayoutFootprint {
            attribute_bytes: self.nodes.len() * FIL_NODE_BYTES,
            topology_bytes: 0,
            index_bytes: (self.tree_src.len() + self.tree_shard.len() + self.tree_root.len()) * 4
                + (self.shard_node_base.len() + self.shard_tree_bound.len()) * 4,
        }
    }
}

/// Profile-packed quantized FIL forest: one meta word + one grid level
/// per node (`4 + T::BYTES` bytes), same emission order rules as
/// [`PackedFilForest`]. Predictions equal the quantizer-snapped oracle
/// (`ThresholdQuantizer::snap_forest`), exactly like [`crate::QFilForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackedQFilForest<T: QuantLevel> {
    meta: Vec<u32>,
    qvalue: Vec<T>,
    tree_src: Vec<u32>,
    tree_shard: Vec<u32>,
    tree_root: Vec<u32>,
    shard_node_base: Vec<u32>,
    shard_tree_bound: Vec<u32>,
    quantizer: ThresholdQuantizer,
    num_classes: u32,
    num_features: usize,
}

impl<T: QuantLevel> PackedQFilForest<T> {
    /// Quantizes and packs `forest` under `plan`. Fails with
    /// [`LayoutError::BadConfig`] on the usual QFil bitfield budgets —
    /// with the child field checked per *shard* (shard-local indices):
    /// a shard wider than [`QFIL_MAX_TREE_NODES`] nodes is rejected.
    pub fn build(
        forest: &RandomForest,
        profile: &FrequencyProfile,
        plan: PackPlan,
    ) -> Result<Self, LayoutError> {
        if forest.num_features() > QFIL_MAX_FEATURES {
            return Err(LayoutError::BadConfig {
                detail: format!(
                    "num_features {} exceeds the {}-wide QFil feature field",
                    forest.num_features(),
                    QFIL_MAX_FEATURES
                ),
            });
        }
        if forest.num_classes() > 0 && forest.num_classes() - 1 > QFIL_MAX_LABEL {
            return Err(LayoutError::BadConfig {
                detail: format!(
                    "class label {} exceeds the QFil leaf payload",
                    forest.num_classes() - 1
                ),
            });
        }
        let layout = pack_layout(forest, profile, plan, 4 + T::BYTES)?;
        for s in 0..layout.shard_node_base.len() - 1 {
            let width = (layout.shard_node_base[s + 1] - layout.shard_node_base[s]) as usize;
            if width > QFIL_MAX_TREE_NODES {
                return Err(LayoutError::BadConfig {
                    detail: format!(
                        "packed shard {s} has {width} nodes, over the {QFIL_MAX_TREE_NODES}-node \
                         child-index budget; lower shard_budget_bytes"
                    ),
                });
            }
        }
        let quantizer = ThresholdQuantizer::fit(forest, T::LEVELS);
        let trees = forest.trees();
        let mut meta = Vec::with_capacity(layout.slots.len());
        let mut qvalue = Vec::with_capacity(layout.slots.len());
        for (g, &(t, id)) in layout.slots.iter().enumerate() {
            match trees[t as usize].nodes()[id as usize] {
                Node::Leaf { label } => {
                    meta.push(qfil_pack_leaf(label));
                    qvalue.push(T::from_level(0));
                }
                Node::Inner { feature, threshold, .. } => {
                    meta.push(qfil_pack_inner(feature as u32, layout.left_child[g]));
                    qvalue.push(T::from_level(quantizer.quantize(feature as usize, threshold)));
                }
            }
        }
        Ok(Self {
            meta,
            qvalue,
            tree_src: layout.tree_src,
            tree_shard: layout.tree_shard,
            tree_root: layout.tree_root,
            shard_node_base: layout.shard_node_base,
            shard_tree_bound: layout.shard_tree_bound,
            quantizer,
            num_classes: forest.num_classes(),
            num_features: forest.num_features(),
        })
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.tree_src.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Query width.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of byte-packed shards.
    pub fn num_shards(&self) -> usize {
        self.shard_node_base.len() - 1
    }

    /// Source tree id voting at packed position `t`.
    pub fn tree_source(&self, t: usize) -> usize {
        self.tree_src[t] as usize
    }

    /// Cumulative packed-tree shard boundaries `[0, ..., num_trees]`.
    pub fn shard_tree_bounds(&self) -> Vec<usize> {
        self.shard_tree_bound.iter().map(|&b| b as usize).collect()
    }

    /// The threshold grid this layout was quantized against (same fit as
    /// [`crate::QFilForest`] at equal `T`, so the same snapped oracle).
    pub fn quantizer(&self) -> &ThresholdQuantizer {
        &self.quantizer
    }

    /// Classifies `query` with packed tree `t` on the f32 path —
    /// branch-identical to the snapped forest.
    pub fn predict_tree(&self, t: usize, query: &[f32]) -> Label {
        let base = self.shard_node_base[self.tree_shard[t] as usize] as usize;
        let mut n = self.tree_root[t] as usize;
        loop {
            let m = self.meta[base + n];
            if m & 1 == 1 {
                return m >> 1;
            }
            let f = ((m >> 1) & QFIL_FEATURE_MASK) as usize;
            let thr = self.quantizer.dequantize(f, self.qvalue[base + n].level());
            let go_right = query[f] >= thr;
            n = (m >> 11) as usize + usize::from(go_right);
        }
    }

    /// Majority-vote classification of one query.
    pub fn predict(&self, query: &[f32]) -> Label {
        let mut votes = vec![0u32; self.num_classes as usize];
        for t in 0..self.num_trees() {
            votes[self.predict_tree(t, query) as usize] += 1;
        }
        crate::majority(&votes)
    }

    /// Traced traversal over the packed addresses: meta words at
    /// `slot × 4`, grid levels at `meta_bytes + slot × T::BYTES` — the
    /// same two-region scheme as [`crate::QFilForest`], new order.
    pub fn predict_tree_traced(&self, t: usize, query: &[f32], sink: &mut dyn FetchSink) -> Label {
        let base = self.shard_node_base[self.tree_shard[t] as usize] as usize;
        let qvalue_base = (self.meta.len() * 4) as u64;
        let mut n = self.tree_root[t] as usize;
        loop {
            let g = base + n;
            sink.attribute((g * 4) as u64, 4);
            let m = self.meta[g];
            if m & 1 == 1 {
                return m >> 1;
            }
            sink.attribute(qvalue_base + (g * T::BYTES) as u64, T::BYTES as u32);
            let f = ((m >> 1) & QFIL_FEATURE_MASK) as usize;
            let thr = self.quantizer.dequantize(f, self.qvalue[g].level());
            sink.query(f as u32);
            let go_right = query[f] >= thr;
            n = (m >> 11) as usize + usize::from(go_right);
        }
    }

    /// Bytes resident: packed meta + levels as attributes; directory and
    /// quantizer table as index overhead.
    pub fn footprint(&self) -> LayoutFootprint {
        LayoutFootprint {
            attribute_bytes: self.meta.len() * (4 + T::BYTES),
            topology_bytes: 0,
            index_bytes: (self.tree_src.len() + self.tree_shard.len() + self.tree_root.len()) * 4
                + (self.shard_node_base.len() + self.shard_tree_bound.len()) * 4
                + self.quantizer.table_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memprobe::CountingSink;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rfx_forest::DecisionTree;

    fn forest(n_trees: usize, seed: u64) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees: Vec<DecisionTree> =
            (0..n_trees).map(|_| DecisionTree::random(&mut rng, 7, 6, 4, 0.3)).collect();
        RandomForest::from_trees(trees, 6, 4).unwrap()
    }

    fn rows(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * 6).map(|_| rng.gen()).collect()
    }

    fn profile_for(f: &RandomForest, seed: u64) -> FrequencyProfile {
        let calib = rows(64, seed);
        FrequencyProfile::collect(f, QueryView::new(&calib, 6).unwrap())
    }

    #[test]
    fn plan_validation_rejects_bad_parameters() {
        assert_eq!(PackPlan::new(2, 0), Err(PackError::ZeroShardBudget));
        assert_eq!(
            PackPlan::new(MAX_INTERLEAVE_LEVELS + 1, 1024),
            Err(PackError::InterleaveTooDeep)
        );
        let plan = PackPlan::new(3, 4096).unwrap();
        assert_eq!(plan.interleave_levels(), 3);
        assert_eq!(plan.shard_budget_bytes(), 4096);
        assert_eq!(PackPlan::default().validated(), Ok(PackPlan::default()));
    }

    #[test]
    fn packed_fil_matches_source_forest_tree_by_tree() {
        let f = forest(9, 1);
        let packed = PackedFilForest::build(&f, &profile_for(&f, 2), PackPlan::default()).unwrap();
        assert_eq!(packed.num_trees(), f.num_trees());
        let queries = rows(200, 3);
        for q in queries.chunks(6) {
            for t in 0..packed.num_trees() {
                assert_eq!(packed.predict_tree(t, q), f.trees()[packed.tree_source(t)].predict(q));
            }
            assert_eq!(packed.predict(q), f.predict(q));
        }
    }

    #[test]
    fn packed_qfil_matches_snapped_oracle() {
        let f = forest(7, 11);
        let profile = profile_for(&f, 12);
        let packed = PackedQFilForest::<u8>::build(&f, &profile, PackPlan::default()).unwrap();
        let snapped = packed.quantizer().snap_forest(&f);
        let queries = rows(200, 13);
        for q in queries.chunks(6) {
            for t in 0..packed.num_trees() {
                assert_eq!(
                    packed.predict_tree(t, q),
                    snapped.trees()[packed.tree_source(t)].predict(q)
                );
            }
            assert_eq!(packed.predict(q), snapped.predict(q));
        }
    }

    #[test]
    fn interleaving_places_all_shard_roots_consecutively() {
        let f = forest(6, 21);
        // Budget large enough for one shard; two interleaved levels.
        let plan = PackPlan::new(2, 1 << 20).unwrap();
        let packed = PackedFilForest::build(&f, &FrequencyProfile::uniform(&f), plan).unwrap();
        assert_eq!(packed.num_shards(), 1);
        // Roots occupy the first num_trees slots of the shard.
        for t in 0..packed.num_trees() {
            assert!((packed.tree_root[t] as usize) < packed.num_trees());
        }
    }

    #[test]
    fn byte_bin_packing_respects_the_shard_budget() {
        let f = forest(10, 31);
        let per_tree_max = f.trees().iter().map(|t| t.num_nodes() * FIL_NODE_BYTES).max().unwrap();
        // Budget of two max-size trees: every multi-tree shard must fit it.
        let plan = PackPlan::new(1, 2 * per_tree_max).unwrap();
        let packed = PackedFilForest::build(&f, &FrequencyProfile::uniform(&f), plan).unwrap();
        let bounds = packed.shard_tree_bounds();
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), f.num_trees());
        for w in bounds.windows(2) {
            let bytes: usize = (w[0]..w[1])
                .map(|t| f.trees()[packed.tree_source(t)].num_nodes() * FIL_NODE_BYTES)
                .sum();
            let single = w[1] - w[0] == 1;
            assert!(single || bytes <= plan.shard_budget_bytes());
        }
        // The permutation really is one: every source tree appears once.
        let mut seen = vec![false; f.num_trees()];
        for t in 0..f.num_trees() {
            assert!(!seen[packed.tree_source(t)]);
            seen[packed.tree_source(t)] = true;
        }
    }

    #[test]
    fn hot_path_nodes_pack_to_the_front() {
        // A single tree with a profile concentrated on one root-to-leaf
        // path: every node on that path must land within the first
        // 2*depth+1 slots (each hot pair is emitted before any cold
        // subtree expands).
        let f = forest(1, 41);
        let hot_q: Vec<f32> = rows(1, 42);
        let profile = FrequencyProfile::collect(&f, QueryView::new(&hot_q, 6).unwrap());
        let plan = PackPlan::new(1, 1 << 20).unwrap();
        let packed = PackedFilForest::build(&f, &profile, plan).unwrap();
        let mut sink = CountingSink::default();
        packed.predict_tree_traced(0, &hot_q, &mut sink);
        let depth = sink.attribute_fetches as usize - 1;
        // Walk again recording slots via addresses: every fetch offset
        // must be below (2*depth + 1) * node bytes.
        struct MaxOffset(u64);
        impl FetchSink for MaxOffset {
            fn attribute(&mut self, offset: u64, _bytes: u32) {
                self.0 = self.0.max(offset);
            }
            fn topology(&mut self, _offset: u64, _bytes: u32) {}
            fn query(&mut self, _feature: u32) {}
        }
        let mut max = MaxOffset(0);
        packed.predict_tree_traced(0, &hot_q, &mut max);
        assert!(max.0 < ((2 * depth + 1) * FIL_NODE_BYTES) as u64);
    }

    #[test]
    fn uniform_profile_and_zero_interleave_are_deterministic_degenerates() {
        let f = forest(5, 51);
        let plan = PackPlan::new(0, 4096).unwrap();
        let a = PackedFilForest::build(&f, &FrequencyProfile::uniform(&f), plan).unwrap();
        let b = PackedFilForest::build(&f, &FrequencyProfile::uniform(&f), plan).unwrap();
        assert_eq!(a, b);
        let queries = rows(100, 52);
        for q in queries.chunks(6) {
            assert_eq!(a.predict(q), f.predict(q));
        }
        // Single-leaf degenerate forest.
        let leaf = RandomForest::from_trees(vec![DecisionTree::leaf(2)], 6, 4).unwrap();
        let packed =
            PackedFilForest::build(&leaf, &FrequencyProfile::uniform(&leaf), plan).unwrap();
        assert_eq!(packed.predict_tree(0, &[0.0; 6]), 2);
    }

    #[test]
    fn mismatched_profile_is_rejected() {
        let f = forest(4, 61);
        let other = forest(5, 62);
        let err =
            PackedFilForest::build(&f, &FrequencyProfile::uniform(&other), PackPlan::default())
                .unwrap_err();
        assert!(matches!(err, LayoutError::BadConfig { .. }));
    }

    #[test]
    fn packed_footprints_are_layout_aware() {
        let f = forest(8, 71);
        let profile = profile_for(&f, 72);
        let packed = PackedFilForest::build(&f, &profile, PackPlan::default()).unwrap();
        let fil = crate::fil::FilForest::build(&f);
        // Same node stream bytes as unpacked FIL — packing moves nodes,
        // it never adds any.
        assert_eq!(packed.footprint().attribute_bytes, fil.footprint().attribute_bytes);
        let q8 = PackedQFilForest::<u8>::build(&f, &profile, PackPlan::default()).unwrap();
        let q16 = PackedQFilForest::<u16>::build(&f, &profile, PackPlan::default()).unwrap();
        let n = f.num_trees();
        assert!(q8.footprint().per_tree(n) < q16.footprint().per_tree(n));
        assert!(q16.footprint().per_tree(n) < packed.footprint().per_tree(n));
        // per_tree stays exact-total-consistent and never zero (mirrors
        // the LayoutFootprint::per_tree contract on the packed layout).
        for fp in [packed.footprint(), q8.footprint(), q16.footprint()] {
            assert_eq!(fp.per_tree(n), (fp.total() / n).max(1));
            assert!(fp.per_tree(usize::MAX) >= 1);
        }
    }

    #[test]
    fn traced_walk_reports_packed_addresses_and_matches_untraced() {
        let f = forest(6, 81);
        let profile = profile_for(&f, 82);
        let packed = PackedFilForest::build(&f, &profile, PackPlan::default()).unwrap();
        let q = rows(1, 83);
        for t in 0..packed.num_trees() {
            let mut sink = CountingSink::default();
            let traced = packed.predict_tree_traced(t, &q, &mut sink);
            assert_eq!(traced, packed.predict_tree(t, &q));
            assert!(sink.attribute_fetches >= 1);
            assert_eq!(sink.attribute_bytes, sink.attribute_fetches * FIL_NODE_BYTES as u64);
        }
    }
}
