//! Fetch-level observation of layout traversals.
//!
//! The layouts in this crate are *address-exact* models of how a forest
//! sits in memory — that is the whole point of FIL vs CSR vs quantized
//! packing. [`FetchSink`] exposes that address stream: each layout's
//! `predict_tree_traced` walks exactly like its `predict_tree` while
//! reporting every simulated memory fetch (byte offset and width within
//! the layout's arrays) to the sink. The CPU engine's software memory
//! tracer (`rfx-kernels`, `mem-tracer` feature) drives a cache-line
//! model over this stream to give the sharded engine the same
//! `*.perf.*` counter schema the GPU/FPGA simulators export.
//!
//! Offsets are region-local: attribute fetches index one contiguous
//! byte space holding the layout's node-attribute arrays (laid out
//! back-to-back in declaration order), topology fetches another for the
//! child-indirection arrays, and query fetches name the feature index
//! read from the caller's row. Consumers place the regions at disjoint
//! bases of a modeled address space.

/// Observer of the simulated memory fetches one tree traversal performs.
///
/// Implementations must be cheap: traced traversal sits inside the
/// engine's per-tile loops.
pub trait FetchSink {
    /// A fetch of `bytes` at byte `offset` within the layout's node
    /// *attribute* arrays (features, thresholds, packed node records).
    fn attribute(&mut self, offset: u64, bytes: u32);

    /// A fetch of `bytes` at byte `offset` within the layout's
    /// *topology* arrays (child-indirection tables). Layouts that embed
    /// topology in the node record (FIL) never call this.
    fn topology(&mut self, offset: u64, bytes: u32);

    /// A read of query feature `feature` from the row being classified.
    fn query(&mut self, feature: u32);
}

/// Discards every fetch — traced traversal with a `NoopSink` takes the
/// same branches as the untraced walk and reports nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl FetchSink for NoopSink {
    #[inline]
    fn attribute(&mut self, _offset: u64, _bytes: u32) {}
    #[inline]
    fn topology(&mut self, _offset: u64, _bytes: u32) {}
    #[inline]
    fn query(&mut self, _feature: u32) {}
}

/// Tallies fetches and bytes per region — enough for exactness tests
/// and quick footprint probes without a cache model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Attribute fetches observed.
    pub attribute_fetches: u64,
    /// Attribute bytes observed.
    pub attribute_bytes: u64,
    /// Topology fetches observed.
    pub topology_fetches: u64,
    /// Topology bytes observed.
    pub topology_bytes: u64,
    /// Query-feature reads observed.
    pub query_fetches: u64,
}

impl FetchSink for CountingSink {
    #[inline]
    fn attribute(&mut self, _offset: u64, bytes: u32) {
        self.attribute_fetches += 1;
        self.attribute_bytes += bytes as u64;
    }
    #[inline]
    fn topology(&mut self, _offset: u64, bytes: u32) {
        self.topology_fetches += 1;
        self.topology_bytes += bytes as u64;
    }
    #[inline]
    fn query(&mut self, _feature: u32) {
        self.query_fetches += 1;
    }
}
