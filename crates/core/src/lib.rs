//! # rfx-core
//!
//! The primary contribution of *Accelerating Random Forest Classification
//! on GPU and FPGA* (Shah et al., ICPP 2022): forest **memory layouts**
//! for accelerator-friendly inference.
//!
//! * [`csr`] — the baseline Compressed Sparse Row layout (§2.3): four
//!   potentially-irregular memory reads per traversal step.
//! * [`hier`] — the paper's hierarchical layout (§3.1): trees cut into
//!   complete binary subtrees; arithmetic child indexing inside a subtree,
//!   CSR-like indirection only at subtree boundaries. Tunable subtree
//!   depth (SD) and root-subtree depth (RSD).
//! * [`fil`] — a cuML-FIL-style sparse layout (the paper's GPU baseline):
//!   colocated 12-byte nodes with adjacent children, one read per step.
//! * [`quant`] — quantized & compressed layouts: u8/u16 thresholds on a
//!   per-feature monotone grid plus packed narrow-node encodings of the
//!   FIL and CSR layouts, with an integer-only comparator path (the
//!   FPGA's BRAM-resident design point).
//! * [`pack`] — profile-guided packed FIL layouts (ROADMAP item 2, after
//!   Browne et al.'s *Forest Packing*): hot-first node order from a
//!   calibration frequency profile, shard-interleaved tree roots, and
//!   byte-budgeted tree bin-packing, at f32 and quantized widths.
//! * [`footprint`] — byte accounting for the Fig. 6 memory study.
//! * [`cluster`] — K-means tree clustering (the §3.2.1 ablation's
//!   "Optimization 1").
//! * [`validate`] — deep structural invariant checking.
//!
//! Every layout exposes a scalar `predict`/`predict_tree` traversal that
//! serves as the functional reference for the GPU/FPGA kernels in
//! `rfx-kernels`; all of them are property-tested to agree with the source
//! [`rfx_forest::RandomForest`].

pub mod cluster;
pub mod csr;
pub mod fil;
pub mod footprint;
pub mod hier;
pub mod memprobe;
pub mod pack;
pub mod quant;
pub mod validate;

pub use csr::CsrForest;
pub use fil::FilForest;
pub use hier::{HierConfig, HierForest};
pub use pack::{FrequencyProfile, PackError, PackPlan, PackedFilForest, PackedQFilForest};
pub use quant::{QCsrForest, QFilForest, QuantLevel, ThresholdQuantizer};
/// SplitMix64, the workspace's single stateless 64-bit hash.
///
/// Defined in `rfx_forest::sampling` (this crate depends on
/// `rfx-forest`, so the training substrate cannot import it from here
/// without a cycle) and re-exported at the canonical `rfx_core` path for
/// every downstream crate: fault schedules, the serving layer's
/// deterministic A/B split, and the synthetic data generators.
pub use rfx_forest::sampling::splitmix64;

/// Class label type shared across layouts.
pub type Label = u32;

/// Errors produced while building or validating layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A layout parameter is out of range.
    BadConfig {
        /// Description of the violated constraint.
        detail: String,
    },
    /// A structural invariant does not hold.
    Corrupt {
        /// Description of what was malformed.
        detail: String,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::BadConfig { detail } => write!(f, "bad layout config: {detail}"),
            LayoutError::Corrupt { detail } => write!(f, "corrupt layout: {detail}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Index of the largest vote count, ties toward the lower class id — the
/// same convention as [`rfx_forest::RandomForest::predict`].
#[inline]
pub fn majority(votes: &[u32]) -> Label {
    let mut best = 0usize;
    for (i, &v) in votes.iter().enumerate() {
        if v > votes[best] {
            best = i;
        }
    }
    best as Label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_tie_breaks_low() {
        assert_eq!(majority(&[3, 3]), 0);
        assert_eq!(majority(&[1, 4, 4]), 1);
        assert_eq!(majority(&[0, 0, 5]), 2);
    }

    #[test]
    fn layout_error_display() {
        let e = LayoutError::BadConfig { detail: "x".into() };
        assert!(e.to_string().contains("bad layout config"));
    }
}
