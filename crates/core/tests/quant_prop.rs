//! Property tests for the quantized layouts (ISSUE 7):
//!
//! 1. **Round-trip bound** — `dequantize(quantize(t))` lands within half a
//!    grid step of `t` (plus f32 rounding slop) for every inner threshold
//!    of every random forest.
//! 2. **Integer/f32 path agreement** — the integer-rank comparator path
//!    takes exactly the branches of the f32 path on any query, including
//!    out-of-range and grid-boundary values.
//! 3. **Snapped-oracle exactness** — both packed layouts predict
//!    bit-identically to the f32 forest whose thresholds were snapped to
//!    the grid ("exact argmax on the quantized grid").

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfx_core::quant::{QCsrForest, QFilForest, QuantLevel, ThresholdQuantizer};
use rfx_forest::{DecisionTree, Node, RandomForest};

const NF: usize = 6;

fn forest_from_seed(seed: u64, n_trees: usize, depth: usize, classes: u32) -> RandomForest {
    let mut rng = StdRng::seed_from_u64(seed);
    let trees: Vec<DecisionTree> = (0..n_trees)
        .map(|_| DecisionTree::random(&mut rng, depth, NF as u16, classes, 0.3))
        .collect();
    RandomForest::from_trees(trees, NF, classes).unwrap()
}

/// Queries that stress the grid: uniform in-range, far out of range, and
/// exact grid points (where `<` vs `<=` mistakes would show).
fn adversarial_queries(
    rng: &mut StdRng,
    quantizer: &ThresholdQuantizer,
    levels: u32,
    n: usize,
) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| {
            (0..NF)
                .map(|f| match rng.gen_range(0..4) {
                    0 => rng.gen::<f32>(),
                    1 => rng.gen::<f32>() * 40.0 - 20.0,
                    2 => quantizer.dequantize(f, rng.gen_range(0..levels)),
                    _ => {
                        // One ulp either side of a grid point.
                        let g = quantizer.dequantize(f, rng.gen_range(0..levels));
                        if rng.gen() {
                            f32::from_bits(g.to_bits().wrapping_add(1))
                        } else {
                            f32::from_bits(g.to_bits().wrapping_sub(1))
                        }
                    }
                })
                .collect()
        })
        .collect()
}

fn round_trip_bound_holds<T: QuantLevel>(forest: &RandomForest) {
    let q = ThresholdQuantizer::fit_for::<T>(forest);
    for tree in forest.trees() {
        for node in tree.nodes() {
            if let Node::Inner { feature, threshold, .. } = *node {
                let f = feature as usize;
                let rt = q.dequantize(f, q.quantize(f, threshold));
                let step = f64::from(q.param(f).scale);
                let slop = (f64::from(threshold.abs()) + step * f64::from(T::LEVELS) + 1.0)
                    * f64::from(f32::EPSILON)
                    * 4.0;
                prop_assert!(
                    (f64::from(rt) - f64::from(threshold)).abs() <= 0.5 * step + slop,
                    "{}: feature {f}: {threshold} -> {rt} (step {step})",
                    T::NAME
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quantize → dequantize stays within half a grid step at both widths.
    #[test]
    fn round_trip_within_half_step(
        seed in any::<u64>(),
        n_trees in 1usize..10,
        depth in 1usize..9,
    ) {
        let forest = forest_from_seed(seed, n_trees, depth, 3);
        round_trip_bound_holds::<u8>(&forest);
        round_trip_bound_holds::<u16>(&forest);
    }

    /// The integer-rank path and the f32 path take identical branches for
    /// every tree of every layout, on adversarial queries.
    #[test]
    fn integer_path_is_branch_identical(
        seed in any::<u64>(),
        n_trees in 1usize..8,
        depth in 1usize..8,
        classes in 1u32..5,
    ) {
        let forest = forest_from_seed(seed, n_trees, depth, classes);
        let qfil = QFilForest::<u8>::build(&forest).unwrap();
        let qcsr = QCsrForest::<u8>::build(&forest).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        for qv in adversarial_queries(&mut rng, qfil.quantizer(), u8::LEVELS, 24) {
            let ranks = qfil.quantizer().quantize_row(&qv);
            for t in 0..forest.num_trees() {
                prop_assert_eq!(
                    qfil.predict_tree_quantized(t, &ranks),
                    qfil.predict_tree(t, &qv),
                    "qfil tree {} query {:?}", t, &qv
                );
                prop_assert_eq!(
                    qcsr.predict_tree_quantized(t, &ranks),
                    qcsr.predict_tree(t, &qv),
                    "qcsr tree {} query {:?}", t, &qv
                );
            }
        }
    }

    /// Both packed layouts reproduce the snapped forest bit-identically —
    /// per tree and at the majority vote.
    #[test]
    fn layouts_are_exact_on_the_quantized_grid(
        seed in any::<u64>(),
        n_trees in 1usize..8,
        depth in 1usize..8,
        classes in 1u32..5,
    ) {
        let forest = forest_from_seed(seed, n_trees, depth, classes);
        let qfil = QFilForest::<u16>::build(&forest).unwrap();
        let qcsr = QCsrForest::<u16>::build(&forest).unwrap();
        prop_assert_eq!(qfil.quantizer(), qcsr.quantizer(), "same fit, same grid");
        let snapped = qfil.quantizer().snap_forest(&forest);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        for qv in adversarial_queries(&mut rng, qfil.quantizer(), 4096, 24) {
            prop_assert_eq!(qfil.predict(&qv), snapped.predict(&qv));
            prop_assert_eq!(qcsr.predict(&qv), snapped.predict(&qv));
            for t in 0..forest.num_trees() {
                let want = snapped.trees()[t].predict(&qv);
                prop_assert_eq!(qfil.predict_tree(t, &qv), want);
                prop_assert_eq!(qcsr.predict_tree(t, &qv), want);
            }
        }
    }
}
